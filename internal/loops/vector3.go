package loops

import (
	"fmt"
	"strings"

	"mfup/internal/emu"
)

// LFK 8, vector coding — the last and largest of the vectorizable
// kernels. The inner ky loop becomes stride-5 vector operations of
// length n-1 (49 <= 64, so one vector set per kx, no strip mining).
// The nine A coefficients and SIG live in T registers and move
// through S4 for the scalar-broadcast operations, exactly as the
// scalar coding keeps them; V1-V3 hold the three difference vectors
// for the whole body, V4-V6 are working registers.
func init() {
	const (
		n     = 50
		nx    = 5
		ny    = n + 2
		plane = nx * ny
		utot  = 2 * plane
		uB    = 0x1000
		duB   = 0x2000
		cB    = 0x0100
	)
	g := newLCG(8) // identical data to the scalar kernel 8
	var a [9]float64
	for i := range a {
		a[i] = g.float()
	}
	sig := g.float()
	u0 := make([]float64, 3*utot)
	for v := 0; v < 3; v++ {
		for i := 0; i < plane; i++ {
			u0[v*utot+i] = g.float()
		}
	}

	idx := func(v, kx, ky, l int) int { return v*utot + kx + nx*ky + plane*l }

	// du computes difference vector Vd = u_v(ky+1) - u_v(ky-1) and
	// stores it into the du block at row offset.
	du := func(vd string, c, duOff int) string {
		return fmt.Sprintf(`    A5 = A1 + %d
    %s = [A5 : 5]
    A5 = A1 + %d
    V6 = [A5 : 5]
    %s = %s -F V6
    A5 = A2 + %d
    [A5 : 1] = %s
`, c+nx, vd, c-nx, vd, vd, duOff, vd)
	}

	// row emits the update of variable v.
	row := func(v int) string {
		c := v * utot
		return fmt.Sprintf(`    S4 = T%[1]d
    V4 = S4 *F V1
    A5 = A1 + %[2]d
    V5 = [A5 : 5]
    V4 = V5 +F V4
    S4 = T%[3]d
    V5 = S4 *F V2
    V4 = V4 +F V5
    S4 = T%[4]d
    V5 = S4 *F V3
    V4 = V4 +F V5
    A5 = A1 + %[5]d
    V5 = [A5 : 5]
    A5 = A1 + %[2]d
    V6 = [A5 : 5]
    V5 = V5 -F V6
    V5 = V5 -F V6
    A5 = A1 + %[6]d
    V6 = [A5 : 5]
    V5 = V5 +F V6
    S4 = T9
    V5 = S4 *F V5
    V4 = V4 +F V5
    A5 = A1 + %[7]d
    [A5 : 5] = V4
`, 3*v, c, 3*v+1, 3*v+2, c+1, c-1, c+plane)
	}

	var consts strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&consts, "    S4 = [A6 + %d]\n    T%d = S4\n", i, i)
	}

	src := fmt.Sprintf(`
; LFK 8, vectorized: stride-5 sweeps along ky
    A6 = %d          ; constant block
%s
    A3 = 1           ; kx, takes 1 and 2
    A6 = 2           ; outer trip count
    A7 = 1
    A4 = %d          ; VL = n-1
    VL = A4
outer:
    A1 = A3 + %d     ; &u1(kx, ky=1, 0)
    A2 = %d          ; &du1[1]
%s%s%s%s%s%s    A3 = A3 + A7
    A6 = A6 - A7
    A0 = A6 + 0
    JAN outer
`, cB, consts.String(), n-1, uB+nx, duB+1,
		du("V1", 0, 0), du("V2", utot, ny), du("V3", 2*utot, 2*ny),
		row(0), row(1), row(2))

	registerVector(&Kernel{
		Number: 8,
		Name:   "ADI integration (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := 0; i < 9; i++ {
				m.SetFloat(cB+int64(i), a[i])
			}
			m.SetFloat(cB+9, sig)
			for i, f := range u0 {
				m.SetFloat(uB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			u := append([]float64(nil), u0...)
			duv := make([]float64, 3*ny)
			for kx := 1; kx <= 2; kx++ {
				for ky := 1; ky <= n-1; ky++ {
					for v := 0; v < 3; v++ {
						duv[v*ny+ky] = u[idx(v, kx, ky+1, 0)] - u[idx(v, kx, ky-1, 0)]
					}
					for v := 0; v < 3; v++ {
						uc := u[idx(v, kx, ky, 0)]
						acc := uc + a[3*v]*duv[ky]
						acc = acc + a[3*v+1]*duv[ny+ky]
						acc = acc + a[3*v+2]*duv[2*ny+ky]
						lap := u[idx(v, kx+1, ky, 0)] - uc
						lap = lap - uc
						lap = lap + u[idx(v, kx-1, ky, 0)]
						u[idx(v, kx, ky, 1)] = acc + sig*lap
					}
				}
			}
			if err := checkFloats(m, "u", uB, u); err != nil {
				return err
			}
			return checkFloats(m, "du", duB, duv)
		},
	}, src)
}
