package loops

import (
	"fmt"
	"strings"

	"mfup/internal/emu"
)

// Further vector codings: LFK 2, 4, 9, and 10. These exercise the
// parts of the vector architecture the first four codings do not —
// non-unit strides (2 for the ICCG cascade, 5 for the band reads, 25
// for the predictor columns), short vectors set directly from loop
// bounds rather than strip mining, and a serial reduction that
// replicates the scalar association bit for bit (kernel 4).
//

// LFK 2, vector coding. Each pass of the cascade is one vector
// operation set: the inner iterations of a pass are independent
// (reads touch x[<= ipntp], writes land at x[> ipntp]) and the loads
// are stride-2. ii halves each pass, so VL = ii after halving, always
// <= 32 for n = 64 — no strip mining needed.
func init() {
	const (
		n    = 64
		size = 4 * n
		xB   = 0x1000
		vB   = 0x2000
	)
	g := newLCG(2)
	x0 := make([]float64, size)
	v := make([]float64, size)
	for i := range x0 {
		x0[i] = g.float()
	}
	for i := range v {
		v[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 2, vectorized: one vector pass per cascade level
    A1 = %[1]d       ; ii = n
    A3 = 0           ; ipntp
    A7 = 1
outer:
    A2 = A3 + 0      ; ipnt = ipntp
    A3 = A3 + A1     ; ipntp += ii
    S7 = A1          ; ii /= 2
    S7 = S7 >> 1
    A1 = S7
    VL = A1          ; the pass processes ii elements
    A5 = A2 + %[2]d  ; &x[ipnt+1]   (x[k],   stride 2)
    V1 = [A5 : 2]
    A5 = A2 + %[3]d  ; &x[ipnt]     (x[k-1], stride 2)
    V2 = [A5 : 2]
    A5 = A2 + %[4]d  ; &x[ipnt+2]   (x[k+1], stride 2)
    V3 = [A5 : 2]
    A5 = A2 + %[5]d  ; &v[ipnt+1]   (v[k],   stride 2)
    V4 = [A5 : 2]
    A5 = A2 + %[6]d  ; &v[ipnt+2]   (v[k+1], stride 2)
    V5 = [A5 : 2]
    V2 = V4 *F V2    ; v[k]*x[k-1]
    V3 = V5 *F V3    ; v[k+1]*x[k+1]
    V1 = V1 -F V2
    V1 = V1 -F V3
    A5 = A3 + %[7]d  ; &x[ipntp+1]  (destination, stride 1)
    [A5 : 1] = V1
    A0 = A1 - A7     ; loop while ii > 1
    JAN outer
`, n, xB+1, xB, xB+2, vB+1, vB+2, xB+1)

	registerVector(&Kernel{
		Number: 2,
		Name:   "ICCG excerpt (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range x0 {
				m.SetFloat(xB+int64(i), f)
			}
			for i, f := range v {
				m.SetFloat(vB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := append([]float64(nil), x0...)
			ii, ipntp := n, 0
			for {
				ipnt := ipntp
				ipntp += ii
				ii /= 2
				i := ipntp
				for k := ipnt + 1; k < ipntp; k += 2 {
					i++
					x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
				}
				if ii <= 1 {
					break
				}
			}
			return checkFloats(m, "x", xB, x)
		},
	}, src)
}

// LFK 4, vector coding. The inner band reduction becomes one
// stride-1 x stride-5 vector multiply of 20 elements, followed by a
// serial element-by-element subtraction from temp — which reproduces
// the scalar association (temp - p0 - p1 - ...) exactly, so the
// scalar reference validates this coding bit for bit.
func init() {
	const (
		n     = 100
		m4    = (1001 - 7) / 2
		inner = n / 5
		xSize = 1014 + inner
		xB    = 0x1000
		yB    = 0x2000
	)
	g := newLCG(4)
	x0 := make([]float64, xSize)
	y := make([]float64, n)
	for i := range x0 {
		x0[i] = g.float()
	}
	for i := range y {
		y[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 4, vectorized band reduction
    A1 = 7           ; k
    A4 = 3           ; outer trip count
    A7 = 1
    A6 = %[1]d       ; &y[4]
    S5 = [A6]        ; y(5), invariant
    A5 = %[2]d
    VL = A5          ; the band is %[2]d elements
outer:
    A2 = A1 + %[3]d  ; &x[k-7]
    V1 = [A2 : 1]    ; x band
    V2 = [A6 : 5]    ; y stride 5
    V1 = V1 *F V2    ; products
    S1 = [A1 + %[4]d] ; temp = x[k-2]
    A3 = 0           ; lane index
    A0 = A5 + 0
reduce:
    A0 = A0 - A7
    S2 = V1 [ A3 ]
    S1 = S1 -F S2    ; temp -= product, scalar order
    A3 = A3 + A7
    JAN reduce
    S1 = S5 *F S1    ; y(5)*temp
    [A1 + %[4]d] = S1
    A1 = A1 + %[5]d  ; k += m
    A4 = A4 - A7
    A0 = A4 + 0
    JAN outer
`, yB+4, inner, xB-7, xB-2, m4)

	registerVector(&Kernel{
		Number: 4,
		Name:   "banded linear equations (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range x0 {
				m.SetFloat(xB+int64(i), f)
			}
			for i, f := range y {
				m.SetFloat(yB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := append([]float64(nil), x0...)
			for k := 7; k <= 1001; k += m4 {
				lw := k - 7
				temp := x[k-2]
				for j := 4; j < n; j += 5 {
					temp -= x[lw] * y[j]
					lw++
				}
				x[k-2] = y[4] * temp
			}
			return checkFloats(m, "x", xB, x)
		},
	}, src)
}

// LFK 9, vector coding. Each Fortran "row" PX(j, .) is a stride-25
// column in our layout; the whole kernel is ~14 strided vector
// operations per 64-element strip. The eight constants occupy S0-S7.
func init() {
	const (
		n    = 100
		cols = 25
		pxB  = 0x1000
		cB   = 0x0100
	)
	g := newLCG(9)
	var dm [7]float64
	for i := range dm {
		dm[i] = g.float()
	}
	c0 := g.float()
	px0 := make([]float64, cols*n)
	for i := range px0 {
		px0[i] = g.float()
	}

	// The seven dm terms: column offsets 12 down to 6, constants
	// S0..S6; the first term initializes the accumulator.
	var body strings.Builder
	body.WriteString("    A5 = A1 + 12\n    V1 = [A5 : 25]\n    V1 = S0 *F V1\n")
	for i := 1; i < 7; i++ {
		fmt.Fprintf(&body, "    A5 = A1 + %d\n    V2 = [A5 : 25]\n    V2 = S%d *F V2\n    V1 = V1 +F V2\n", 12-i, i)
	}
	body.WriteString(`    A5 = A1 + 4
    V2 = [A5 : 25]
    A5 = A1 + 5
    V3 = [A5 : 25]
    V2 = V2 +F V3
    V2 = S7 *F V2
    V1 = V1 +F V2
    A5 = A1 + 2
    V2 = [A5 : 25]
    V1 = V1 +F V2
    [A1 : 25] = V1
`)

	src := fmt.Sprintf(`
; LFK 9, vectorized: stride-25 columns
    A6 = %d
    S0 = [A6 + 0]
    S1 = [A6 + 1]
    S2 = [A6 + 2]
    S3 = [A6 + 3]
    S4 = [A6 + 4]
    S5 = [A6 + 5]
    S6 = [A6 + 6]
    S7 = [A6 + 7]
    A1 = %d          ; strip base
    A4 = %d
    A7 = 64
loop:
    A0 = A4 + 0
    JAZ done
    A0 = A4 - 64
    JAM rest
    VL = A7
%s    A1 = A1 + 1600   ; 64 rows of 25
    A4 = A4 - A7
    J loop
rest:
    VL = A4
%sdone:
`, cB, pxB, n, body.String(), body.String())

	registerVector(&Kernel{
		Number: 9,
		Name:   "integrate predictors (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range dm {
				m.SetFloat(cB+int64(i), f)
			}
			m.SetFloat(cB+7, c0)
			for i, f := range px0 {
				m.SetFloat(pxB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			px := append([]float64(nil), px0...)
			for i := 0; i < n; i++ {
				r := px[i*cols : (i+1)*cols]
				acc := dm[0] * r[12]
				acc = acc + dm[1]*r[11]
				acc = acc + dm[2]*r[10]
				acc = acc + dm[3]*r[9]
				acc = acc + dm[4]*r[8]
				acc = acc + dm[5]*r[7]
				acc = acc + dm[6]*r[6]
				acc = acc + c0*(r[4]+r[5])
				acc = acc + r[2]
				r[0] = acc
			}
			return checkFloats(m, "px", pxB, px)
		},
	}, src)
}

// LFK 10, vector coding: the difference cascade over stride-25
// columns, alternating V1/V2 as the scalar version alternates S1/S2.
func init() {
	const (
		n    = 100
		cols = 25
		pxB  = 0x1000
		cxB  = 0x8000
	)
	g := newLCG(10)
	px0 := make([]float64, cols*n)
	cx := make([]float64, cols*n)
	for i := range px0 {
		px0[i] = g.float()
		cx[i] = g.float()
	}

	var body strings.Builder
	body.WriteString("    A5 = A2 + 4\n    V1 = [A5 : 25]\n")
	prev, next := "V1", "V2"
	for j := 4; j <= 11; j++ {
		fmt.Fprintf(&body, "    A5 = A1 + %d\n    V3 = [A5 : 25]\n    %s = %s -F V3\n    [A5 : 25] = %s\n",
			j, next, prev, prev)
		prev, next = next, prev
	}
	fmt.Fprintf(&body, "    A5 = A1 + 12\n    V3 = [A5 : 25]\n    %s = %s -F V3\n", next, prev)
	fmt.Fprintf(&body, "    A6 = A1 + 13\n    [A6 : 25] = %s\n", next)
	fmt.Fprintf(&body, "    [A5 : 25] = %s\n", prev)

	src := fmt.Sprintf(`
; LFK 10, vectorized difference cascade
    A1 = %d          ; px strip base
    A2 = %d          ; cx strip base
    A4 = %d
    A7 = 64
loop:
    A0 = A4 + 0
    JAZ done
    A0 = A4 - 64
    JAM rest
    VL = A7
%s    A1 = A1 + 1600
    A2 = A2 + 1600
    A4 = A4 - A7
    J loop
rest:
    VL = A4
%sdone:
`, pxB, cxB, n, body.String(), body.String())

	registerVector(&Kernel{
		Number: 10,
		Name:   "difference predictors (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := range px0 {
				m.SetFloat(pxB+int64(i), px0[i])
				m.SetFloat(cxB+int64(i), cx[i])
			}
		},
		check: func(m *emu.Machine) error {
			px := append([]float64(nil), px0...)
			for k := 0; k < n; k++ {
				r := px[k*cols : (k+1)*cols]
				prev := cx[k*cols+4]
				for j := 4; j <= 11; j++ {
					nxt := prev - r[j]
					r[j] = prev
					prev = nxt
				}
				r[13] = prev - r[12]
				r[12] = prev
			}
			return checkFloats(m, "px", pxB, px)
		},
	}, src)
}
