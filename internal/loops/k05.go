package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 5 — tri-diagonal elimination, below diagonal (scalar):
//
//	DO 5 i = 2,n
//	5  X(i) = Z(i)*(Y(i) - X(i-1))
//
// A true linear recurrence: each element needs the previous one, so
// the loop cannot be vectorized. The running x[i-1] is kept in a
// register, as a compiler would.
func init() { registerBuilder(5, 100, 2, 4000, buildK05) }

func buildK05(n int) (*Kernel, string, error) {
	const (
		xB = 0x1000
		yB = 0x2000
		zB = 0x3000
	)
	g := newLCG(5)
	x0 := g.float()
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range y {
		y[i] = g.float()
		z[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 5: tri-diagonal elimination
    A1 = %d          ; &x[1]
    A2 = %d          ; &y[1]
    A3 = %d          ; &z[1]
    A7 = 1
    A0 = %d
    S1 = [A1 - 1]    ; x[0]
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S2 = [A2]        ; y[i]
    S3 = [A3]        ; z[i]
    S2 = S2 -F S1    ; y[i] - x[i-1]
    S1 = S3 *F S2    ; z[i]*(...)
    [A1] = S1        ; x[i], carried into the next iteration
    A1 = A1 + A7
    A2 = A2 + A7
    A3 = A3 + A7
    JAN loop
`, xB+1, yB+1, zB+1, n-1)

	k := &Kernel{
		Number: 5,
		Name:   "tri-diagonal elimination",
		Class:  Scalar,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(xB, x0)
			for i := 0; i < n; i++ {
				m.SetFloat(yB+int64(i), y[i])
				m.SetFloat(zB+int64(i), z[i])
			}
		},
		check: func(m *emu.Machine) error {
			x := make([]float64, n)
			x[0] = x0
			for i := 1; i < n; i++ {
				x[i] = z[i] * (y[i] - x[i-1])
			}
			return checkFloats(m, "x", xB, x)
		},
	}
	return k, src, nil
}
