package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 1 — hydro fragment (vectorizable):
//
//	DO 1 k = 1,n
//	1  X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))
func init() { registerBuilder(1, 100, 1, 4000, buildK01) }

func buildK01(n int) (*Kernel, string, error) {
	const (
		constB = 0x0100 // q, r, t
		xB     = 0x1000
		yB     = 0x2000
		zB     = 0x3000
	)
	g := newLCG(1)
	q, r, t := g.float(), g.float(), g.float()
	y := make([]float64, n)
	z := make([]float64, n+11)
	for i := range y {
		y[i] = g.float()
	}
	for i := range z {
		z[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 1: hydro fragment
    A6 = %d         ; constant block
    S1 = [A6 + 0]   ; q
    S2 = [A6 + 1]   ; r
    S3 = [A6 + 2]   ; t
    A1 = %d         ; &x[0]
    A2 = %d         ; &y[0]
    A3 = %d         ; &z[0]
    A7 = 1
    A0 = %d         ; trip count
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S4 = [A3 + 10]  ; z[k+10]
    S5 = [A3 + 11]  ; z[k+11]
    S4 = S2 *F S4   ; r*z[k+10]
    S5 = S3 *F S5   ; t*z[k+11]
    S6 = [A2]       ; y[k]
    S4 = S4 +F S5
    S4 = S6 *F S4
    S4 = S1 +F S4   ; q + ...
    [A1] = S4       ; x[k]
    A1 = A1 + A7
    A2 = A2 + A7
    A3 = A3 + A7
    JAN loop
`, constB, xB, yB, zB, n)

	k := &Kernel{
		Number: 1,
		Name:   "hydro fragment",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(constB+0, q)
			m.SetFloat(constB+1, r)
			m.SetFloat(constB+2, t)
			for i, v := range y {
				m.SetFloat(yB+int64(i), v)
			}
			for i, v := range z {
				m.SetFloat(zB+int64(i), v)
			}
		},
		check: func(m *emu.Machine) error {
			want := make([]float64, n)
			for k := 0; k < n; k++ {
				want[k] = q + y[k]*(r*z[k+10]+t*z[k+11])
			}
			return checkFloats(m, "x", xB, want)
		},
	}
	return k, src, nil
}
