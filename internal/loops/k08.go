package loops

import (
	"fmt"
	"strings"

	"mfup/internal/emu"
)

// LFK 8 — ADI integration (vectorizable):
//
//	DO 8 kx = 2,3
//	DO 8 ky = 2,n
//	  DU1(ky)= U1(kx,ky+1,1) - U1(kx,ky-1,1)        (same for DU2/U2, DU3/U3)
//	  U1(kx,ky,2)= U1(kx,ky,1) + A11*DU1(ky) + A12*DU2(ky) + A13*DU3(ky)
//	             + SIG*(U1(kx+1,ky,1) - 2*U1(kx,ky,1) + U1(kx-1,ky,1))
//	  (same for U2 with A2j, U3 with A3j)
//
// The largest straight-line loop body in the suite (~70 instructions,
// 18 loads, 6 stores per iteration). The 2*U term is computed as
// ((a-b)-b)+c, avoiding a 2.0 constant; the reference matches that
// association. Storage is Fortran order: element (kx,ky,l), all
// 0-based here, lives at kx + NX*ky + NX*NY*l.
func init() { registerBuilder(8, 50, 4, 130, buildK08) }

func buildK08(n int) (*Kernel, string, error) {
	const (
		uB  = 0x1000 // u1, then u2, then u3, contiguous
		duB = 0x2000 // du1, du2, du3, contiguous (ny words each)
		cB  = 0x0100 // a11..a33 row-major, then sig
	)
	const nx = 5
	ny := n + 2
	plane := nx * ny  // words per time level
	utot := 2 * plane // words per variable
	g := newLCG(8)
	var a [9]float64
	for i := range a {
		a[i] = g.float()
	}
	sig := g.float()
	u0 := make([]float64, 3*utot) // plane 0 of each variable is input
	for v := 0; v < 3; v++ {
		for i := 0; i < plane; i++ {
			u0[v*utot+i] = g.float()
		}
	}

	idx := func(v, kx, ky, l int) int { return v*utot + kx + nx*ky + plane*l }

	// row emits the update of variable v (0-based) of the inner body.
	row := func(v int) string {
		c := v * utot
		return fmt.Sprintf(`
    S4 = T%[1]d
    S4 = S4 *F S1    ; a%[6]d1*du1
    S5 = [A1 + %[2]d]
    S4 = S5 +F S4
    S5 = T%[7]d
    S5 = S5 *F S2    ; a%[6]d2*du2
    S4 = S4 +F S5
    S5 = T%[8]d
    S5 = S5 *F S3    ; a%[6]d3*du3
    S4 = S4 +F S5
    S5 = [A1 + %[3]d] ; u%[6]d(kx+1)
    S6 = [A1 + %[2]d] ; u%[6]d(kx)
    S5 = S5 -F S6
    S5 = S5 -F S6
    S6 = [A1 + %[4]d] ; u%[6]d(kx-1)
    S5 = S5 +F S6
    S6 = T9          ; sig
    S5 = S6 *F S5
    S4 = S4 +F S5
    [A1 + %[5]d] = S4 ; u%[6]d(kx,ky,2)
`, 3*v, c, c+1, c-1, c+plane, v+1, 3*v+1, 3*v+2)
	}

	var consts strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&consts, "    S4 = [A6 + %d]\n    T%d = S4\n", i, i)
	}

	src := fmt.Sprintf(`
; LFK 8: ADI integration
    A6 = %[1]d       ; constant block
%[2]s
    A3 = 1           ; kx (0-based), takes 1 and 2
    A5 = %[3]d       ; ky stride
    A6 = 2           ; outer trip count
    A7 = 1
outer:
    A1 = A3 + %[4]d  ; &u1(kx, ky=1, 0)
    A2 = %[5]d       ; &du1[1]
    A0 = %[6]d       ; inner trip count
inner:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A1 + %[3]d]  ; u1(kx,ky+1,1)
    S4 = [A1 - %[3]d]  ; u1(kx,ky-1,1)
    S1 = S1 -F S4      ; du1
    [A2 + 0] = S1
    S2 = [A1 + %[7]d]
    S4 = [A1 + %[8]d]
    S2 = S2 -F S4      ; du2
    [A2 + %[9]d] = S2
    S3 = [A1 + %[10]d]
    S4 = [A1 + %[11]d]
    S3 = S3 -F S4      ; du3
    [A2 + %[12]d] = S3
%[13]s
    A1 = A1 + A5
    A2 = A2 + A7
    JAN inner
    A3 = A3 + A7
    A6 = A6 - A7
    A0 = A6 + 0
    JAN outer
`,
		cB, consts.String(), nx, uB+nx, duB+1, n-1,
		utot+nx, utot-nx, ny, 2*utot+nx, 2*utot-nx, 2*ny,
		row(0)+row(1)+row(2))

	k := &Kernel{
		Number: 8,
		Name:   "ADI integration",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := 0; i < 9; i++ {
				m.SetFloat(cB+int64(i), a[i])
			}
			m.SetFloat(cB+9, sig)
			for i, f := range u0 {
				m.SetFloat(uB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			u := append([]float64(nil), u0...)
			du := make([]float64, 3*ny)
			for kx := 1; kx <= 2; kx++ {
				for ky := 1; ky <= n-1; ky++ {
					for v := 0; v < 3; v++ {
						du[v*ny+ky] = u[idx(v, kx, ky+1, 0)] - u[idx(v, kx, ky-1, 0)]
					}
					for v := 0; v < 3; v++ {
						uc := u[idx(v, kx, ky, 0)]
						acc := uc + a[3*v]*du[ky]
						acc = acc + a[3*v+1]*du[ny+ky]
						acc = acc + a[3*v+2]*du[2*ny+ky]
						lap := u[idx(v, kx+1, ky, 0)] - uc
						lap = lap - uc
						lap = lap + u[idx(v, kx-1, ky, 0)]
						u[idx(v, kx, ky, 1)] = acc + sig*lap
					}
				}
			}
			if err := checkFloats(m, "u", uB, u); err != nil {
				return err
			}
			return checkFloats(m, "du", duB, du)
		},
	}
	return k, src, nil
}
