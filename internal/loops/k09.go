package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 9 — integrate predictors (vectorizable):
//
//	DO 9 i = 1,n
//	9  PX(1,i)= DM28*PX(13,i) + DM27*PX(12,i) + DM26*PX(11,i)
//	          + DM25*PX(10,i) + DM24*PX( 9,i) + DM23*PX( 8,i)
//	          + DM22*PX( 7,i) + C0*( PX( 5,i) + PX( 6,i)) + PX( 3,i)
//
// PX is stored Fortran-style: column j of particle i at pxB + (j-1) +
// 25*(i-1), so the row pointer advances by 25 per iteration and the
// columns are constant offsets. The seven DM constants and C0 live in
// T registers, moved to S registers at each use — the classic CRAY
// scalar code shape for constant-heavy kernels.
func init() { registerBuilder(9, 100, 1, 4000, buildK09) }

func buildK09(n int) (*Kernel, string, error) {
	const (
		cols = 25
		pxB  = 0x1000
		cB   = 0x0100 // dm28, dm27, ..., dm22, c0
	)
	g := newLCG(9)
	var dm [7]float64 // dm28 down to dm22
	for i := range dm {
		dm[i] = g.float()
	}
	c0 := g.float()
	px0 := make([]float64, cols*n)
	for i := range px0 {
		px0[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 9: integrate predictors
    A6 = %d
    S4 = [A6 + 0]
    T0 = S4          ; dm28
    S4 = [A6 + 1]
    T1 = S4          ; dm27
    S4 = [A6 + 2]
    T2 = S4          ; dm26
    S4 = [A6 + 3]
    T3 = S4          ; dm25
    S4 = [A6 + 4]
    T4 = S4          ; dm24
    S4 = [A6 + 5]
    T5 = S4          ; dm23
    S4 = [A6 + 6]
    T6 = S4          ; dm22
    S4 = [A6 + 7]
    T7 = S4          ; c0
    A1 = %d          ; &px[0][0]
    A7 = 1
    A0 = %d
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = T0
    S2 = [A1 + 12]   ; px(13,i)
    S1 = S1 *F S2
    S2 = T1
    S3 = [A1 + 11]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T2
    S3 = [A1 + 10]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T3
    S3 = [A1 + 9]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T4
    S3 = [A1 + 8]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T5
    S3 = [A1 + 7]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T6
    S3 = [A1 + 6]
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = T7
    S3 = [A1 + 4]    ; px(5,i)
    S4 = [A1 + 5]    ; px(6,i)
    S3 = S3 +F S4
    S2 = S2 *F S3
    S1 = S1 +F S2
    S2 = [A1 + 2]    ; px(3,i)
    S1 = S1 +F S2
    [A1 + 0] = S1    ; px(1,i)
    A1 = A1 + 25
    JAN loop
`, cB, pxB, n)

	k := &Kernel{
		Number: 9,
		Name:   "integrate predictors",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range dm {
				m.SetFloat(cB+int64(i), f)
			}
			m.SetFloat(cB+7, c0)
			for i, f := range px0 {
				m.SetFloat(pxB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			px := append([]float64(nil), px0...)
			for i := 0; i < n; i++ {
				r := px[i*cols : (i+1)*cols]
				acc := dm[0] * r[12]
				acc = acc + dm[1]*r[11]
				acc = acc + dm[2]*r[10]
				acc = acc + dm[3]*r[9]
				acc = acc + dm[4]*r[8]
				acc = acc + dm[5]*r[7]
				acc = acc + dm[6]*r[6]
				acc = acc + c0*(r[4]+r[5])
				acc = acc + r[2]
				r[0] = acc
			}
			return checkFloats(m, "px", pxB, px)
		},
	}
	return k, src, nil
}
