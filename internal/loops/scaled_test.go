package loops

import (
	"math"
	"testing"

	"mfup/internal/isa"
)

// TestScaledKernelsValidate: every kernel still validates bit-exactly
// at non-default loop lengths.
func TestScaledKernelsValidate(t *testing.T) {
	alt := map[int][]int{
		1: {10, 200}, 2: {16, 128}, 3: {10, 200}, 4: {50, 200},
		5: {10, 200}, 6: {10, 80}, 7: {10, 200}, 8: {10, 100},
		9: {10, 200}, 10: {10, 200}, 11: {10, 200}, 12: {10, 200},
		13: {10, 200}, 14: {10, 200},
	}
	for number, ns := range alt {
		for _, n := range ns {
			k, err := Scaled(number, n)
			if err != nil {
				t.Errorf("Scaled(%d, %d): %v", number, n, err)
				continue
			}
			if k.N != n {
				t.Errorf("Scaled(%d, %d): N = %d", number, n, k.N)
			}
			if _, err := k.Trace(); err != nil {
				t.Errorf("Scaled(%d, %d): %v", number, n, err)
			}
		}
	}
}

func TestScaledRejectsBadLengths(t *testing.T) {
	cases := []struct {
		number, n int
	}{
		{1, 0},      // below minimum
		{1, 100000}, // above layout capacity
		{2, 48},     // not a power of two
		{4, 99},     // not a multiple of five
		{8, 1000},   // above kernel 8's layout capacity
		{14, 5000},  // above kernel 14's layout capacity
		{99, 100},   // no such kernel
	}
	for _, c := range cases {
		if _, err := Scaled(c.number, c.n); err == nil {
			t.Errorf("Scaled(%d, %d) did not fail", c.number, c.n)
		}
	}
}

func TestScaledDoesNotDisturbRegistry(t *testing.T) {
	before := registry[1].SharedTrace().Len()
	if _, err := Scaled(1, 500); err != nil {
		t.Fatal(err)
	}
	after := registry[1].SharedTrace().Len()
	if before != after {
		t.Error("Scaled mutated the registered default kernel")
	}
}

// TestScaledTraceGrowsLinearly: dynamic instruction count scales with
// loop length (the body is unchanged).
func TestScaledTraceGrowsLinearly(t *testing.T) {
	small, err := Scaled(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Scaled(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.MustTrace().Len()) / float64(small.MustTrace().Len())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4x length gave %.2fx instructions", ratio)
	}
}

// TestMixStableInN: the instruction mix is a property of the loop
// body, so doubling the loop length barely moves it. (The companion
// issue-rate stability check lives in internal/core, which can run
// the machines.)
func TestMixStableInN(t *testing.T) {
	double := map[int]int{
		1: 200, 2: 128, 3: 200, 4: 200, 5: 200, 6: 80, 7: 200,
		8: 100, 9: 200, 10: 200, 11: 200, 12: 200, 13: 200, 14: 200,
	}
	for _, k := range All() {
		scaled, err := Scaled(k.Number, double[k.Number])
		if err != nil {
			t.Fatalf("Scaled(%d): %v", k.Number, err)
		}
		baseMix := k.SharedTrace().ComputeMix()
		scaledMix := scaled.MustTrace().ComputeMix()
		// Instruction mix fractions barely move...
		for u := 0; u < isa.NumUnits; u++ {
			d := math.Abs(baseMix.Fraction(isa.Unit(u)) - scaledMix.Fraction(isa.Unit(u)))
			if d > 0.05 {
				t.Errorf("%s: unit %s mix moved by %.3f with loop length", k, isa.Unit(u), d)
			}
		}
	}
}

func TestVectorKernelRegistry(t *testing.T) {
	ks := VectorKernels()
	if len(ks) != 9 {
		t.Fatalf("VectorKernels returned %d kernels, want 9", len(ks))
	}
	want := []int{1, 2, 3, 4, 7, 8, 9, 10, 12}
	for i, k := range ks {
		if k.Number != want[i] {
			t.Errorf("vector kernel %d has number %d, want %d", i, k.Number, want[i])
		}
		if k.Class != Vectorizable {
			t.Errorf("vector kernel %d not classified Vectorizable", k.Number)
		}
	}
	if _, err := VectorKernel(5); err == nil {
		t.Error("VectorKernel(5) did not fail (LFK 5 is a recurrence)")
	}
}

func TestVectorKernelsValidate(t *testing.T) {
	for _, k := range VectorKernels() {
		tr, err := k.Trace()
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		// Vector traces are far shorter than their scalar versions.
		sk, _ := Get(k.Number)
		if tr.Len() >= sk.SharedTrace().Len() {
			t.Errorf("%s: vector trace (%d ops) not shorter than scalar (%d ops)",
				k, tr.Len(), sk.SharedTrace().Len())
		}
	}
}

func TestVectorKernelVLUsage(t *testing.T) {
	// Every vector instruction carries a plausible element count, and
	// the strip-mined kernels (n = 100 over 64-element registers) show
	// both the full and the remainder strip.
	stripMined := map[int]bool{1: true, 3: true, 7: true, 9: true, 10: true, 12: true}
	for _, k := range VectorKernels() {
		tr := k.MustTrace()
		seen64, seen36 := false, false
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if !op.Code.IsVector() || op.VLen == 0 {
				continue
			}
			if op.VLen < 0 || op.VLen > 64 {
				t.Fatalf("%s: op %d has VLen %d", k, i, op.VLen)
			}
			if op.VLen == 64 {
				seen64 = true
			}
			if op.VLen == 36 {
				seen36 = true
			}
		}
		if stripMined[k.Number] && (!seen64 || !seen36) {
			t.Errorf("%s: strip lengths 64/36 not both observed (64:%v 36:%v)", k, seen64, seen36)
		}
	}
}
