package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 14 — 1-D particle in cell (scalar). Three consecutive passes
// over the particles:
//
//	DO 141 k= 1,n
//	  VX(k)= 0.0; XX(k)= 0.0
//	  IX(k)= INT(GRD(k)); XI(k)= REAL(IX(k))
//	  EX1(k)= EX(IX(k)); DEX1(k)= DEX(IX(k))
//	DO 142 k= 1,n
//	  VX(k)= VX(k) + EX1(k) + (XX(k) - XI(k))*DEX1(k)
//	  XX(k)= XX(k) + VX(k) + FLX
//	DO 143 k= 1,n
//	  IR= INT(XX(k)); RX= XX(k) - REAL(IR)
//	  IR= MOD2N(IR,2048) + 1; XX(k)= RX + REAL(IR)
//	  RH(IR)  = RH(IR)   + 1.0 - RX
//	  RH(IR+1)= RH(IR+1) + RX
//
// The first pass gathers field values through the integer mesh index,
// the third scatters charge back — the classic deposit phase. All
// arrays are addressed as base + k with a single index register.
func init() { registerBuilder(14, 100, 1, 250, buildK14) }

func buildK14(n int) (*Kernel, string, error) {
	const (
		mesh   = 2048
		grdB   = 0x1000
		xiB    = 0x1100
		ex1B   = 0x1200
		dex1B  = 0x1300
		vxB    = 0x1400
		xxB    = 0x1500
		exB    = 0x2000 // mesh-sized
		dexB   = 0x3000 // mesh-sized
		rhB    = 0x4000 // mesh+2
		constB = 0x0100 // flx, 1.0
	)
	g := newLCG(14)
	grd := make([]float64, n)
	for i := range grd {
		grd[i] = 2 + float64(g.next()%(mesh-4)) + g.float()/2
	}
	ex := make([]float64, mesh)
	dex := make([]float64, mesh)
	for i := range ex {
		ex[i] = g.float()
		dex[i] = g.float()
	}
	rh0 := make([]float64, mesh+2)
	for i := range rh0 {
		rh0[i] = g.float()
	}
	flx := g.float()

	src := fmt.Sprintf(`
; LFK 14: 1-D particle in cell
    A5 = %[1]d       ; constant block
    S7 = [A5 + 0]    ; flx
    S4 = [A5 + 1]
    T0 = S4          ; 1.0
    S6 = 0
    A1 = 0           ; k
    A7 = 1
    A0 = %[2]d
loopA:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A1 + %[3]d]  ; grd[k]
    A3 = FIX S1        ; ix
    S2 = FLOAT A3
    [A1 + %[4]d] = S2  ; xi[k]
    S3 = [A3 + %[5]d]  ; ex[ix]
    [A1 + %[6]d] = S3  ; ex1[k]
    S4 = [A3 + %[7]d]  ; dex[ix]
    [A1 + %[8]d] = S4  ; dex1[k]
    [A1 + %[9]d] = S6  ; vx[k] = 0
    [A1 + %[10]d] = S6 ; xx[k] = 0
    A1 = A1 + A7
    JAN loopA
    A1 = 0
    A0 = %[2]d
loopB:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A1 + %[9]d]  ; vx[k]
    S2 = [A1 + %[6]d]  ; ex1[k]
    S1 = S1 +F S2
    S3 = [A1 + %[10]d] ; xx[k]
    S4 = [A1 + %[4]d]  ; xi[k]
    S3 = S3 -F S4
    S5 = [A1 + %[8]d]  ; dex1[k]
    S3 = S3 *F S5
    S1 = S1 +F S3
    [A1 + %[9]d] = S1  ; vx[k]
    S3 = [A1 + %[10]d]
    S3 = S3 +F S1
    S3 = S3 +F S7      ; + flx
    [A1 + %[10]d] = S3 ; xx[k]
    A1 = A1 + A7
    JAN loopB
    S6 = 2047          ; MOD2N mask
    A1 = 0
    A0 = %[2]d
loopC:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A1 + %[10]d] ; xx[k]
    A3 = FIX S1
    S2 = FLOAT A3
    S2 = S1 -F S2      ; rx
    S3 = A3
    S3 = S3 & S6
    A3 = S3
    A3 = A3 + A7       ; ir (1-based)
    S3 = FLOAT A3
    S3 = S2 +F S3      ; rx + ir
    [A1 + %[10]d] = S3 ; xx[k]
    S4 = [A3 + %[11]d] ; rh[ir-1]
    S5 = T0
    S5 = S5 -F S2      ; 1.0 - rx
    S4 = S4 +F S5
    [A3 + %[11]d] = S4
    S4 = [A3 + %[12]d] ; rh[ir]
    S4 = S4 +F S2
    [A3 + %[12]d] = S4
    A1 = A1 + A7
    JAN loopC
`, constB, n, grdB, xiB, exB, ex1B, dexB, dex1B, vxB, xxB, rhB-1, rhB)

	k := &Kernel{
		Number: 14,
		Name:   "1-D particle in cell",
		Class:  Scalar,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(constB+0, flx)
			m.SetFloat(constB+1, 1.0)
			for i, v := range grd {
				m.SetFloat(grdB+int64(i), v)
			}
			for i := 0; i < mesh; i++ {
				m.SetFloat(exB+int64(i), ex[i])
				m.SetFloat(dexB+int64(i), dex[i])
			}
			for i, v := range rh0 {
				m.SetFloat(rhB+int64(i), v)
			}
		},
		check: func(m *emu.Machine) error {
			xi := make([]float64, n)
			ex1 := make([]float64, n)
			dex1 := make([]float64, n)
			vx := make([]float64, n)
			xx := make([]float64, n)
			rh := append([]float64(nil), rh0...)
			for k := 0; k < n; k++ {
				ixk := int(grd[k])
				xi[k] = float64(ixk)
				ex1[k] = ex[ixk]
				dex1[k] = dex[ixk]
			}
			for k := 0; k < n; k++ {
				vx[k] = vx[k] + ex1[k] + (xx[k]-xi[k])*dex1[k]
				xx[k] = xx[k] + vx[k] + flx
			}
			for k := 0; k < n; k++ {
				ir := int(xx[k])
				rx := xx[k] - float64(ir)
				ir = ir&2047 + 1
				xx[k] = rx + float64(ir)
				rh[ir-1] = rh[ir-1] + (1.0 - rx)
				rh[ir] = rh[ir] + rx
			}
			for _, chk := range []struct {
				what string
				base int64
				want []float64
			}{
				{"xi", xiB, xi}, {"ex1", ex1B, ex1}, {"dex1", dex1B, dex1},
				{"vx", vxB, vx}, {"xx", xxB, xx}, {"rh", rhB, rh},
			} {
				if err := checkFloats(m, chk.what, chk.base, chk.want); err != nil {
					return err
				}
			}
			return nil
		},
	}
	return k, src, nil
}
