package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 6 — general linear recurrence equations (scalar):
//
//	DO 6 i = 2,n
//	DO 6 k = 1,i-1
//	6  W(i) = W(i) + B(i,k)*W(i-k)
//
// Triangular doubly nested recurrence; every w[i] needs all earlier
// w values, so the kernel is inherently scalar.
func init() { registerBuilder(6, 40, 2, 256, buildK06) }

func buildK06(n int) (*Kernel, string, error) {
	const (
		wB = 0x1000
		bB = 0x2000 // row-major n x n
	)
	g := newLCG(6)
	w0 := make([]float64, n)
	b := make([]float64, n*n)
	for i := range w0 {
		w0[i] = g.float()
	}
	for i := range b {
		b[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 6: general linear recurrence
    A1 = 1           ; i
    A5 = %[1]d       ; n (row stride of b)
    A6 = %[2]d       ; outer trip count n-1
    A7 = 1
outer:
    S1 = [A1 + %[3]d] ; w[i]
    A2 = A1 * A5     ; b row offset i*n
    A2 = A2 + %[4]d  ; &b[i][0]
    A3 = A1 + %[5]d  ; &w[i-1], walks backward
    A0 = A1 + 0      ; inner trip count = i
inner:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S2 = [A2]        ; b[i][k]
    S3 = [A3]        ; w[i-k-1]
    S2 = S2 *F S3
    S1 = S1 +F S2
    A2 = A2 + A7
    A3 = A3 - A7
    JAN inner
    [A1 + %[3]d] = S1 ; w[i]
    A1 = A1 + A7
    A6 = A6 - A7
    A0 = A6 + 0
    JAN outer
`, n, n-1, wB, bB, wB-1)

	k := &Kernel{
		Number: 6,
		Name:   "general linear recurrence",
		Class:  Scalar,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range w0 {
				m.SetFloat(wB+int64(i), f)
			}
			for i, f := range b {
				m.SetFloat(bB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			w := append([]float64(nil), w0...)
			for i := 1; i < n; i++ {
				for k := 0; k < i; k++ {
					w[i] = w[i] + b[i*n+k]*w[i-k-1]
				}
			}
			return checkFloats(m, "w", wB, w)
		},
	}
	return k, src, nil
}
