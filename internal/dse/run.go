package dse

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/machdef"
	"mfup/internal/queuemodel"
	"mfup/internal/runner"
	"mfup/internal/stats"
	"mfup/internal/trace"
)

// Point is one machine definition's place in the sweep.
type Point struct {
	Spec machdef.Spec `json:"spec"` // canonical
	Key  string       `json:"key"`  // content key of (spec, workload)

	Cost  float64 `json:"cost"`  // machdef.Spec.Cost area proxy
	Model float64 `json:"model"` // queueing-model predicted rate

	// Unpriced marks a point the model could not estimate; it is
	// exempt from pruning and from the calibration statistics.
	Unpriced bool `json:"unpriced,omitempty"`

	// Rate is the simulated harmonic-mean issue rate; 0 until the
	// point is simulated (or served from the journal).
	Rate        float64 `json:"rate,omitempty"`
	Simulated   bool    `json:"simulated,omitempty"`
	FromJournal bool    `json:"fromjournal,omitempty"`
	Pruned      bool    `json:"pruned,omitempty"`
	Frontier    bool    `json:"frontier,omitempty"`
	Err         string  `json:"err,omitempty"`
}

// ModelStats quantifies how well the analytic model tracked the
// simulator over the sweep.
type ModelStats struct {
	// MeanAbsRelErr is the mean |model-sim|/sim over rated points. The
	// model is an optimistic bound, so this is typically large; it is
	// reported for calibration, not correctness.
	MeanAbsRelErr float64 `json:"meanabsrelerr"`

	// FrontierAgreement is the fraction of pairwise orderings on the
	// simulated Pareto frontier that the model reproduces — the
	// cross-check the sweep is built around.
	FrontierAgreement float64 `json:"frontieragreement"`

	// Pairs is how many frontier pairs were compared.
	Pairs int `json:"pairs"`
}

// Report is one sweep's full outcome.
type Report struct {
	SweepKey string `json:"sweepkey"`
	Loops    string `json:"loops"`
	Scale    int    `json:"scale,omitempty"`

	Expanded    int `json:"expanded"`    // cartesian combinations visited
	Invalid     int `json:"invalid"`     // combinations outside the space
	Deduped     int `json:"deduped"`     // distinct machine definitions
	Pruned      int `json:"pruned"`      // dropped by the queueing model
	Simulated   int `json:"simulated"`   // actually run
	FromJournal int `json:"fromjournal"` // served from the resume journal
	Failed      int `json:"failed"`      // simulation failures

	Points []Point `json:"points"`

	// FrontierIdx indexes Points on the Pareto frontier (maximal rate
	// for their cost), cost-ascending.
	FrontierIdx []int `json:"frontier"`

	Model ModelStats `json:"model"`

	Notes []string `json:"notes,omitempty"`
}

// Options configures one sweep run.
type Options struct {
	Parallel int         // worker goroutines; <= 0 means all cores
	Limits   core.Limits // per-run execution bounds
	Journal  *Journal    // resume journal, or nil
}

// pointKey is the journal key of one (machine, workload) pair:
// readable, and by construction different whenever anything
// rate-affecting differs. Extrapolation is absent — it is
// bit-identical — as are the execution limits, which only affect
// whether a run completes.
func pointKey(s SweepSpec, specKey string) string {
	return fmt.Sprintf("dse-point/v1:loops=%s:scale=%d:machdef=%s", s.Loops, s.Scale, specKey)
}

// tracesFor materializes the sweep's workload: the selected loop
// class at the requested scale, with virtual-window counts for the
// extrapolation engine where kernels cannot physically reach it.
func tracesFor(s SweepSpec) (ts []*trace.Trace, virtual map[string]int64, notes []string) {
	virtual = map[string]int64{}
	for _, base := range loops.All() {
		switch s.Loops {
		case "scalar":
			if base.Class != loops.Scalar {
				continue
			}
		case "vectorizable":
			if base.Class != loops.Vectorizable {
				continue
			}
		}
		k, extra := base, int64(0)
		if s.Scale > 0 {
			var err error
			k, extra, err = loops.ForScale(base.Number, s.Scale)
			if err != nil {
				notes = append(notes, fmt.Sprintf("%s: %v; using default length %d", base, err, base.N))
				k, extra = base, 0
			}
		}
		if extra > 0 {
			if s.Extrapolate {
				v := int64(0)
				var err error
				if err = core.CanExtrapolate(k.SharedTrace()); err == nil {
					v, err = loops.VirtualWindows(k, extra)
				}
				if err != nil {
					notes = append(notes, fmt.Sprintf("%s: clamped to %d iterations: %v", k, k.N, err))
				}
				if v > 0 {
					virtual[k.SharedTrace().Name] = v
				}
			} else {
				notes = append(notes, fmt.Sprintf("%s: clamped to %d iterations (enable extrapolation to extend analytically)", k, k.N))
			}
		}
		ts = append(ts, k.SharedTrace())
	}
	return ts, virtual, notes
}

// Planned is a sweep caught between planning and resolution: the
// deterministic front half of a run — expansion, pricing, pruning —
// has happened, and what remains is attaching a simulated rate to
// every point in Need. The in-process driver (Run) resolves them on
// the local worker pool; the cluster router resolves them by
// dispatching each point to the worker that owns its content key.
// Either way the same Finish assembles the same frontier, which is
// what makes a sharded sweep byte-comparable to a local one.
type Planned struct {
	Spec    SweepSpec // canonical
	Report  *Report
	Need    []int // indices of Report.Points that still need a rate
	Traces  []*trace.Trace
	Virtual map[string]int64 // virtual-window counts for extrapolation
}

// PlanSweep runs the deterministic front half of a sweep: expand the
// axes, price and model-predict every distinct machine, prune the
// dominated ones. No simulation happens; the returned plan's Need
// lists the surviving points awaiting rates.
func PlanSweep(sweep SweepSpec) (*Planned, error) {
	s, err := sweep.Canonicalize()
	if err != nil {
		return nil, err
	}
	specs, expanded, invalid, err := s.Expand()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dse: sweep expands to no valid machine definitions")
	}

	ts, virtual, notes := tracesFor(s)
	workload := queuemodel.WorkloadOf(ts)

	r := &Report{
		SweepKey: s.Key(), Loops: s.Loops, Scale: s.Scale,
		Expanded: expanded, Invalid: invalid, Deduped: len(specs),
		Points: make([]Point, len(specs)),
		Notes:  notes,
	}
	for i, spec := range specs {
		p := &r.Points[i]
		p.Spec = spec
		p.Key = pointKey(s, spec.Key())
		p.Cost = spec.Cost()
		est, err := queuemodel.Predict(spec, workload)
		if err != nil {
			// Never prune what the model cannot price.
			r.Notes = append(r.Notes, fmt.Sprintf("model: %s: %v", spec.Kind, err))
			p.Unpriced = true
			continue
		}
		p.Model = est.Rate
	}

	if s.Prune != nil {
		prune(r.Points, *s.Prune)
		for i := range r.Points {
			if r.Points[i].Pruned {
				r.Pruned++
			}
		}
	}

	pl := &Planned{Spec: s, Report: r, Traces: ts, Virtual: virtual}
	for i := range r.Points {
		if !r.Points[i].Pruned {
			pl.Need = append(pl.Need, i)
		}
	}
	return pl, nil
}

// Finish assembles the back half of the report — the Pareto frontier
// and the model-agreement cross-check — once every resolvable point
// carries a rate. It returns the finished report.
func (pl *Planned) Finish() *Report {
	frontier(pl.Report)
	modelStats(pl.Report)
	return pl.Report
}

// Run executes the sweep: expand, price, predict, prune, simulate,
// and assemble the frontier. The sweep is canonicalized first, so any
// parsed spec works. Cancellation via ctx skips unstarted points; the
// partial report still assembles.
func Run(ctx context.Context, sweep SweepSpec, opt Options) (*Report, error) {
	pl, err := PlanSweep(sweep)
	if err != nil {
		return nil, err
	}
	s, r, ts, virtual := pl.Spec, pl.Report, pl.Traces, pl.Virtual

	// Partition the survivors against the journal, then fan the rest
	// out over the worker pool.
	var tasks []runner.Task
	var taskIdx []int
	for _, i := range pl.Need {
		p := &r.Points[i]
		if opt.Journal != nil {
			if rate, ok := opt.Journal.Lookup(p.Key); ok {
				p.Rate, p.FromJournal = rate, true
				r.FromJournal++
				continue
			}
		}
		spec := p.Spec
		mk := func() core.Machine {
			m, err := spec.New()
			if err != nil {
				panic(fmt.Sprintf("dse: point %s: %v", spec.Key(), err))
			}
			return m
		}
		if s.Extrapolate {
			inner := mk
			mk = func() core.Machine {
				return core.Extrapolate(inner()).WithVirtual(virtual).BestEffort()
			}
		}
		tasks = append(tasks, runner.Task{New: mk, Traces: ts})
		taskIdx = append(taskIdx, i)
	}

	results, _, errs := runner.RunCheckedStats(ctx, runner.Options{
		Parallel: opt.Parallel,
		Limits:   opt.Limits,
	}, tasks)
	failed := make(map[int]string)
	for _, e := range errs {
		i := taskIdx[e.Task]
		if _, dup := failed[i]; !dup {
			failed[i] = e.Error()
		}
	}
	for ti, cell := range results {
		i := taskIdx[ti]
		p := &r.Points[i]
		if msg, bad := failed[i]; bad {
			p.Err = msg
			r.Failed++
			continue
		}
		rs := make([]float64, 0, len(cell))
		for _, res := range cell {
			rate := res.IssueRate()
			if !(rate > 0) {
				p.Err = fmt.Sprintf("non-positive issue rate on %s", res.Trace)
				break
			}
			rs = append(rs, rate)
		}
		if p.Err != "" {
			r.Failed++
			continue
		}
		p.Rate = stats.HarmonicMean(rs)
		p.Simulated = true
		r.Simulated++
		if opt.Journal != nil {
			opt.Journal.Record(p.Key, p.Rate)
		}
	}

	return pl.Finish(), nil
}

// prune drops points the model says are dominated: sorted by cost
// ascending (model-rate descending within a cost), a point whose
// predicted rate is beaten by a factor of 1+Margin by some
// cheaper-or-equal point is pruned — the margin is the model error a
// near-frontier point is given the benefit of. An exact tie is
// pruned outright: the model predicts zero gain for strictly more
// hardware, typically because both points saturate the same
// bottleneck. A Keep floor restores the best-predicted pruned points
// if pruning bites too deep.
func prune(points []Point, p PruneSpec) {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := &points[order[a]], &points[order[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		if pa.Model != pb.Model {
			return pa.Model > pb.Model
		}
		return pa.Key < pb.Key
	})
	best := math.Inf(-1)
	survivors := 0
	for _, i := range order {
		pt := &points[i]
		if pt.Unpriced {
			survivors++ // never prune what the model could not price
			continue
		}
		if best >= pt.Model*(1+p.Margin) || best == pt.Model {
			pt.Pruned = true
		} else {
			survivors++
		}
		if pt.Model > best {
			best = pt.Model
		}
	}
	if survivors < p.Keep {
		// Restore the best-predicted pruned points up to the floor.
		var pruned []int
		for i := range points {
			if points[i].Pruned {
				pruned = append(pruned, i)
			}
		}
		sort.Slice(pruned, func(a, b int) bool {
			pa, pb := &points[pruned[a]], &points[pruned[b]]
			if pa.Model != pb.Model {
				return pa.Model > pb.Model
			}
			return pa.Key < pb.Key
		})
		for _, i := range pruned {
			if survivors >= p.Keep {
				break
			}
			points[i].Pruned = false
			survivors++
		}
	}
}

// frontier marks the Pareto-optimal rated points: maximal simulated
// rate at their cost. FrontierIdx lists them cost-ascending.
func frontier(r *Report) {
	var rated []int
	for i := range r.Points {
		if r.Points[i].Rate > 0 {
			rated = append(rated, i)
		}
	}
	sort.Slice(rated, func(a, b int) bool {
		pa, pb := &r.Points[rated[a]], &r.Points[rated[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		if pa.Rate != pb.Rate {
			return pa.Rate > pb.Rate
		}
		return pa.Key < pb.Key
	})
	best := 0.0
	for _, i := range rated {
		if r.Points[i].Rate > best {
			best = r.Points[i].Rate
			r.Points[i].Frontier = true
			r.FrontierIdx = append(r.FrontierIdx, i)
		}
	}
}

// modelStats fills in the model-vs-simulation calibration numbers.
func modelStats(r *Report) {
	var absErr float64
	var rated int
	for i := range r.Points {
		p := &r.Points[i]
		if p.Rate > 0 && !p.Unpriced {
			absErr += math.Abs(p.Model-p.Rate) / p.Rate
			rated++
		}
	}
	if rated > 0 {
		r.Model.MeanAbsRelErr = absErr / float64(rated)
	}
	f := r.FrontierIdx
	agree := 0
	for a := 0; a < len(f); a++ {
		for b := a + 1; b < len(f); b++ {
			pa, pb := &r.Points[f[a]], &r.Points[f[b]]
			if pa.Unpriced || pb.Unpriced {
				continue
			}
			r.Model.Pairs++
			// Frontier rates strictly increase with cost, so agreement
			// means the model orders the pair the same way (ties count
			// for the model: it never contradicts the simulation).
			if (pa.Rate-pb.Rate)*(pa.Model-pb.Model) >= 0 {
				agree++
			}
		}
	}
	if r.Model.Pairs > 0 {
		r.Model.FrontierAgreement = float64(agree) / float64(r.Model.Pairs)
	}
}
