package dse

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"mfup/internal/machdef"
)

func mustParse(t *testing.T, src string) SweepSpec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return s
}

func TestExpandGrid(t *testing.T) {
	s := mustParse(t, `{
		"base": {"kind": "ooo"},
		"axes": {
			"width": {"from": 1, "to": 4},
			"bus": ["nbus", "1bus"]
		}
	}`)
	specs, expanded, invalid, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if expanded != 8 || invalid != 0 || len(specs) != 8 {
		t.Fatalf("expanded %d invalid %d distinct %d, want 8/0/8", expanded, invalid, len(specs))
	}
	// Deterministic order: sorted by content key.
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Key() >= specs[i].Key() {
			t.Fatal("expansion not key-sorted")
		}
	}
}

// Knobs a kind ignores canonicalize away, so those combinations
// collapse into one distinct machine rather than multiplying.
func TestExpandDedupesIgnoredKnobs(t *testing.T) {
	s := mustParse(t, `{
		"base": {"kind": "cray"},
		"axes": {"ruu": [10, 20, 30]}
	}`)
	specs, expanded, _, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if expanded != 3 || len(specs) != 1 {
		t.Fatalf("expanded %d distinct %d, want 3 collapsing to 1", expanded, len(specs))
	}
}

// Combinations outside the space — an explicit bus count on a
// non-crossbar interconnect — are holes, not failures.
func TestExpandCountsInvalidHoles(t *testing.T) {
	s := mustParse(t, `{
		"base": {"kind": "ooo", "width": 4},
		"axes": {
			"bus": ["nbus", "xbar"],
			"buses": [1, 2]
		}
	}`)
	specs, expanded, invalid, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if expanded != 4 || invalid != 2 || len(specs) != 2 {
		t.Fatalf("expanded %d invalid %d distinct %d, want 4/2/2", expanded, invalid, len(specs))
	}
}

func TestExpandCapIsExplicit(t *testing.T) {
	s := mustParse(t, `{
		"base": {"kind": "ooo"},
		"axes": {"width": {"from": 1, "to": 100}, "ruu": {"from": 1, "to": 200}},
		"maxpoints": 50
	}`)
	if _, _, _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-budget expansion not refused: %v", err)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct{ src, want string }{
		{`{"base": {"kind": "vector"}}`, "vector"},
		{`{"base": {"kind": "ooo"}, "axes": {"kind": ["cray", "vector"]}}`, "vector"},
		{`{"base": {"kind": "ooo"}, "axes": {"warp": [1]}}`, "unknown axis"},
		{`{"base": {"kind": "ooo"}, "axes": {"width": ["wide"]}}`, "integers"},
		{`{"base": {"kind": "ooo"}, "axes": {"bus": [3]}}`, "strings"},
		{`{"base": {"kind": "ooo"}, "axes": {"width": []}}`, "no values"},
		{`{"base": {"kind": "ooo"}, "axes": {"width": {"from": 5, "to": 1}}}`, "below"},
		{`{"base": {"kind": "ooo"}, "loops": "fortran"}`, "loops"},
		{`{"base": {"kind": "ooo"}, "typo": 1}`, "unknown field"},
		{`{"base": {"kind": "ooo"}, "prune": {"margin": -1}}`, "margin"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("Parse(%s) accepted", c.src)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%s) error %q does not mention %q", c.src, err, c.want)
		}
	}
}

// The sweep key must ignore axis value order but track axis values.
func TestSweepKeyCanonical(t *testing.T) {
	a := mustParse(t, `{"base": {"kind": "ooo"}, "axes": {"width": [4, 1, 2]}}`)
	b := mustParse(t, `{"base": {"kind": "ooo"}, "axes": {"width": [1, 2, 4, 2]}}`)
	c := mustParse(t, `{"base": {"kind": "ooo"}, "axes": {"width": [1, 2, 8]}}`)
	if a.Key() != b.Key() {
		t.Error("axis order/duplicates changed the sweep key")
	}
	if a.Key() == c.Key() {
		t.Error("different axis values share a sweep key")
	}
}

func TestPruneKeepsFrontierAndFloor(t *testing.T) {
	points := []Point{
		{Key: "a", Cost: 100, Model: 1.0},
		{Key: "b", Cost: 200, Model: 0.5}, // dominated by a
		{Key: "c", Cost: 300, Model: 2.0},
		{Key: "d", Cost: 300, Model: 1.0}, // dominated by a and c
	}
	prune(points, PruneSpec{Margin: 0.10})
	if points[0].Pruned || points[2].Pruned {
		t.Fatal("model frontier pruned")
	}
	if !points[1].Pruned || !points[3].Pruned {
		t.Fatal("dominated points survived")
	}
	// The margin protects near-frontier points.
	points2 := []Point{
		{Key: "a", Cost: 100, Model: 1.0},
		{Key: "b", Cost: 200, Model: 0.95}, // within 10% of a: kept
	}
	prune(points2, PruneSpec{Margin: 0.10})
	if points2[1].Pruned {
		t.Fatal("near-frontier point inside the margin was pruned")
	}
	// The keep floor restores the best pruned points.
	points3 := []Point{
		{Key: "a", Cost: 100, Model: 1.0},
		{Key: "b", Cost: 200, Model: 0.5},
		{Key: "c", Cost: 300, Model: 0.4},
	}
	prune(points3, PruneSpec{Margin: 0.10, Keep: 2})
	kept := 0
	for _, p := range points3 {
		if !p.Pruned {
			kept++
		}
	}
	if kept != 2 || points3[1].Pruned {
		t.Fatalf("keep floor: kept %d (b pruned: %v), want 2 with b restored", kept, points3[1].Pruned)
	}
}

// A small end-to-end sweep: the issue-width axis of the out-of-order
// machine. Checks tallies, the frontier shape, and the acceptance
// bar: the model orders at least 90% of frontier pairs the way the
// simulation does.
func TestRunEndToEnd(t *testing.T) {
	s := mustParse(t, `{
		"base": {"kind": "ooo", "mem": 11, "br": 5},
		"axes": {
			"width": [1, 2, 4, 8],
			"bus": ["nbus", "1bus"]
		}
	}`)
	r, err := Run(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deduped != 8 || r.Simulated != 8 || r.Failed != 0 {
		t.Fatalf("distinct %d simulated %d failed %d, want 8/8/0", r.Deduped, r.Simulated, r.Failed)
	}
	if len(r.FrontierIdx) < 2 {
		t.Fatalf("frontier has %d points, want at least 2", len(r.FrontierIdx))
	}
	// Frontier is cost-ascending and rate-ascending by construction.
	for k := 1; k < len(r.FrontierIdx); k++ {
		prev, cur := &r.Points[r.FrontierIdx[k-1]], &r.Points[r.FrontierIdx[k]]
		if cur.Cost <= prev.Cost || cur.Rate <= prev.Rate {
			t.Fatalf("frontier not monotone: (%g,%g) then (%g,%g)", prev.Cost, prev.Rate, cur.Cost, cur.Rate)
		}
	}
	if r.Model.Pairs > 0 && r.Model.FrontierAgreement < 0.9 {
		t.Errorf("model agrees on %.0f%% of frontier pairs, want >= 90%%", 100*r.Model.FrontierAgreement)
	}
	// Rendering must not choke, and JSON must round-trip.
	if out := r.Render(); !strings.Contains(out, "Pareto frontier") {
		t.Error("Render missing frontier section")
	}
	if _, err := r.JSON(); err != nil {
		t.Errorf("JSON: %v", err)
	}
	if csvOut, err := r.CSV(); err != nil || !strings.Contains(csvOut, "cost,rate,model") {
		t.Errorf("CSV: %v", err)
	}
}

// Pruning plus the journal: a pruned sweep simulates fewer points,
// and a resume against the journal simulates none at all — while a
// journal from a different workload misses by construction. The
// replicated-reciprocal axis is the guaranteed-dominated dimension:
// the scalar loops issue no Recip operations, so the second copy
// raises the cost at an identical model rate and must be pruned.
func TestRunPruneAndResume(t *testing.T) {
	src := `{
		"base": {"kind": "multi", "mem": 11, "br": 5},
		"axes": {"width": {"from": 1, "to": 6}, "fucount.Recip": [1, 2]},
		"prune": {"margin": 0.05, "keep": 2}
	}`
	s := mustParse(t, src)
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(context.Background(), s, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if r1.Pruned == 0 {
		t.Fatal("sweep pruned nothing; replicating an idle unit must be model-dominated")
	}
	if r1.Simulated+r1.Pruned != r1.Deduped {
		t.Fatalf("tallies do not add up: %d simulated + %d pruned != %d distinct", r1.Simulated, r1.Pruned, r1.Deduped)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), s, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if r2.Simulated != 0 || r2.FromJournal != r1.Simulated {
		t.Fatalf("resume simulated %d, journal-served %d; want 0 and %d", r2.Simulated, r2.FromJournal, r1.Simulated)
	}
	for i := range r1.Points {
		if r1.Points[i].Rate != r2.Points[i].Rate {
			t.Fatalf("point %d: resumed rate %v != original %v", i, r2.Points[i].Rate, r1.Points[i].Rate)
		}
	}

	// Same machines, different workload: every key misses.
	s3 := mustParse(t, strings.Replace(src, `"prune"`, `"scale": 50000, "extrapolate": true, "prune"`, 1))
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	r3, err := Run(context.Background(), s3, Options{Journal: j3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.FromJournal != 0 {
		t.Fatalf("journal served %d points across a workload change", r3.FromJournal)
	}
}

// Extrapolated rates must be bit-identical to full simulation. The
// comparison runs at the default scale: scaling up clamps each kernel
// to its physical maximum when simulated in full but extends it
// virtually when extrapolated, so the iteration counts — and thus the
// rates — only coincide where no clamping happens.
func TestRunExtrapolateBitIdentical(t *testing.T) {
	base := `{"base": {"kind": "ruu", "width": 2}, "axes": {"ruu": [10, 50]}%s}`
	full := mustParse(t, strings.Replace(base, "%s", "", 1))
	fast := mustParse(t, strings.Replace(base, "%s", `, "extrapolate": true`, 1))
	rFull, err := Run(context.Background(), full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := Run(context.Background(), fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rFull.Points {
		if rFull.Points[i].Rate != rFast.Points[i].Rate {
			t.Fatalf("point %d: extrapolated rate %v != simulated %v",
				i, rFast.Points[i].Rate, rFull.Points[i].Rate)
		}
	}
}

// The journal key embeds the machine's content address, so two
// distinct specs can never collide.
func TestPointKeyDiscriminates(t *testing.T) {
	s := SweepSpec{Loops: "scalar"}
	a, _ := machdef.Canonicalize(machdef.Spec{Kind: "ooo", Width: 2})
	b, _ := machdef.Canonicalize(machdef.Spec{Kind: "ooo", Width: 4})
	if pointKey(s, a.Key()) == pointKey(s, b.Key()) {
		t.Fatal("distinct machines share a journal key")
	}
	s2 := s
	s2.Scale = 1000
	if pointKey(s, a.Key()) == pointKey(s2, a.Key()) {
		t.Fatal("different scales share a journal key")
	}
}
