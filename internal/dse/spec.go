// Package dse is the design-space exploration driver: it expands a
// declarative sweep specification into a grid of machine definitions
// (internal/machdef), prunes the clearly-dominated ones with the
// analytic queueing model (internal/queuemodel), simulates the rest
// on the worker pool, and reports the Pareto frontier of issue rate
// against hardware cost — with the model's agreement on that frontier
// as a built-in cross-check of both the model and the simulator.
package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"mfup/internal/machdef"
)

// DefaultMaxPoints bounds how many machine definitions one sweep may
// expand to; SweepSpec.MaxPoints overrides it. The bound is explicit,
// not a silent truncation: an over-budget sweep is an error naming
// the product.
const DefaultMaxPoints = 10000

// SweepSpec is the wire form of one design-space sweep: a base
// machine definition plus named axes, each a list or range of values
// substituted into the base. The cartesian product of the axes is the
// candidate grid.
type SweepSpec struct {
	// Base is the machine definition every grid point starts from.
	Base machdef.Spec `json:"base"`

	// Axes maps a knob name to the values it sweeps over. Knobs:
	// kind, bus (string-valued); mem, br, width, buses, ruu, stations,
	// membanks (int-valued); fulat.<Unit> and fucount.<Unit>
	// (int-valued, e.g. "fucount.FloatMul").
	Axes map[string]Axis `json:"axes"`

	// Loops selects the workload: "scalar" (default), "vectorizable",
	// or "all".
	Loops string `json:"loops,omitempty"`

	// Scale regenerates the kernels at this loop length (as mfutables
	// -scale); 0 keeps the paper defaults.
	Scale int `json:"scale,omitempty"`

	// Extrapolate runs each point under the steady-state extrapolation
	// engine — bit-identical rates, far cheaper at large Scale.
	Extrapolate bool `json:"extrapolate,omitempty"`

	// Prune enables model-based pruning of the expanded grid; nil
	// simulates every point.
	Prune *PruneSpec `json:"prune,omitempty"`

	// MaxPoints overrides DefaultMaxPoints.
	MaxPoints int `json:"maxpoints,omitempty"`
}

// PruneSpec controls the analytic pruning pass: a point is pruned
// when another point costs no more and the model predicts it at least
// (1+Margin) times faster — dominated with room for model error.
type PruneSpec struct {
	// Margin is the relative headroom a dominating point must have
	// before the dominated one is dropped; default 0.10.
	Margin float64 `json:"margin,omitempty"`

	// Keep is a floor on survivors: if pruning leaves fewer, the
	// best-predicted pruned points are restored up to Keep.
	Keep int `json:"keep,omitempty"`
}

// Axis is one swept knob's value set: either an explicit JSON list
// ([1,2,4] or ["nbus","1bus"]) or a range object
// ({"from":1,"to":8,"step":2}). Values are sorted and deduplicated,
// so two sweeps listing the same set in different orders share a Key.
type Axis struct {
	Ints []int    `json:"-"`
	Strs []string `json:"-"`
}

// axisRange is the range wire form.
type axisRange struct {
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"`
}

// UnmarshalJSON accepts the list and range forms.
func (a *Axis) UnmarshalJSON(b []byte) error {
	t := strings.TrimSpace(string(b))
	if strings.HasPrefix(t, "{") {
		dec := json.NewDecoder(strings.NewReader(t))
		dec.DisallowUnknownFields()
		var r axisRange
		if err := dec.Decode(&r); err != nil {
			return fmt.Errorf("axis range: %v", err)
		}
		if r.Step == 0 {
			r.Step = 1
		}
		if r.Step < 1 {
			return fmt.Errorf("axis range: step %d must be positive", r.Step)
		}
		if r.To < r.From {
			return fmt.Errorf("axis range: to %d below from %d", r.To, r.From)
		}
		for v := r.From; v <= r.To; v += r.Step {
			a.Ints = append(a.Ints, v)
		}
		return nil
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("axis: want a list or a {from,to,step} range: %v", err)
	}
	for _, rv := range raw {
		var iv int
		if err := json.Unmarshal(rv, &iv); err == nil {
			a.Ints = append(a.Ints, iv)
			continue
		}
		var sv string
		if err := json.Unmarshal(rv, &sv); err != nil {
			return fmt.Errorf("axis value %s: want an integer or a string", rv)
		}
		a.Strs = append(a.Strs, sv)
	}
	if len(a.Ints) > 0 && len(a.Strs) > 0 {
		return fmt.Errorf("axis mixes integer and string values")
	}
	return nil
}

// MarshalJSON renders the canonical (sorted, deduplicated) value
// list, which is what Key hashes.
func (a Axis) MarshalJSON() ([]byte, error) {
	if len(a.Strs) > 0 {
		return json.Marshal(a.Strs)
	}
	return json.Marshal(a.Ints)
}

// canonical sorts and deduplicates the axis values in place.
func (a *Axis) canonical() {
	sort.Ints(a.Ints)
	a.Ints = dedupInts(a.Ints)
	sort.Strings(a.Strs)
	a.Strs = dedupStrings(a.Strs)
}

func dedupInts(vs []int) []int {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupStrings(vs []string) []string {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// len returns the axis's value count.
func (a Axis) len() int { return len(a.Ints) + len(a.Strs) }

// stringAxes are the knobs that take string values.
var stringAxes = map[string]bool{"kind": true, "bus": true}

// intAxes are the scalar integer knobs.
var intAxes = map[string]bool{
	"mem": true, "br": true, "width": true, "buses": true,
	"ruu": true, "stations": true, "membanks": true,
}

// checkAxis validates one axis name/typing pair.
func checkAxis(name string, a Axis) error {
	switch {
	case stringAxes[name]:
		if len(a.Ints) > 0 {
			return fmt.Errorf("axis %q takes strings, got integers", name)
		}
		if name == "kind" {
			for _, v := range a.Strs {
				if strings.EqualFold(v, "vector") {
					return fmt.Errorf("axis kind: the vector machine has its own datapath and is outside the sweep space")
				}
			}
		}
	case intAxes[name] || strings.HasPrefix(name, "fulat.") || strings.HasPrefix(name, "fucount."):
		if len(a.Strs) > 0 {
			return fmt.Errorf("axis %q takes integers, got strings", name)
		}
	default:
		return fmt.Errorf("unknown axis %q (scalar knobs: kind, bus, mem, br, width, buses, ruu, stations, membanks; per-unit: fulat.<Unit>, fucount.<Unit>)", name)
	}
	if a.len() == 0 {
		return fmt.Errorf("axis %q has no values", name)
	}
	return nil
}

// Canonicalize validates the sweep and rewrites it into its normal
// form: base spec canonicalized, axis values sorted and deduplicated,
// defaults spelled out.
func (s SweepSpec) Canonicalize() (SweepSpec, error) {
	c := s
	base, err := machdef.Canonicalize(c.Base)
	if err != nil {
		return c, fmt.Errorf("dse: base: %w", err)
	}
	if base.Kind == "vector" {
		return c, fmt.Errorf("dse: base: the vector machine has its own datapath and is outside the sweep space")
	}
	c.Base = base
	axes := make(map[string]Axis, len(c.Axes))
	for name, a := range c.Axes {
		a.canonical()
		if err := checkAxis(name, a); err != nil {
			return c, fmt.Errorf("dse: %w", err)
		}
		axes[name] = a
	}
	c.Axes = axes
	switch c.Loops {
	case "", "scalar":
		c.Loops = "scalar"
	case "vectorizable", "all":
	default:
		return c, fmt.Errorf("dse: loops %q: want scalar, vectorizable, or all", s.Loops)
	}
	if c.Scale < 0 {
		return c, fmt.Errorf("dse: scale %d cannot be negative", c.Scale)
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.MaxPoints < 1 {
		return c, fmt.Errorf("dse: maxpoints %d must be positive", s.MaxPoints)
	}
	if c.Prune != nil {
		p := *c.Prune
		if p.Margin == 0 {
			p.Margin = 0.10
		}
		if p.Margin < 0 {
			return c, fmt.Errorf("dse: prune margin %g cannot be negative", s.Prune.Margin)
		}
		if p.Keep < 0 {
			return c, fmt.Errorf("dse: prune keep %d cannot be negative", s.Prune.Keep)
		}
		c.Prune = &p
	}
	return c, nil
}

// Parse strictly decodes a JSON sweep specification — unknown fields
// are errors — and canonicalizes it.
func Parse(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("dse: parsing sweep: %v", err)
	}
	return s.Canonicalize()
}

// ParseFile reads and parses the sweep specification at path.
func ParseFile(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("dse: %w", err)
	}
	return Parse(data)
}

// Key returns the content address of a canonical sweep: the SHA-256,
// in hex, of its versioned canonical JSON. Two sweeps that expand to
// the same grid under the same workload share a key.
func (s SweepSpec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("dse: marshaling sweep: %v", err))
	}
	sum := sha256.Sum256(append([]byte("dse/v1:"), b...))
	return hex.EncodeToString(sum[:])
}

// applyAxis substitutes one axis value into a spec. The spec's unit
// maps are already private copies (see Expand).
func applyAxis(m *machdef.Spec, name string, iv int, sv string) {
	switch name {
	case "kind":
		m.Kind = sv
	case "bus":
		m.Bus = sv
	case "mem":
		m.Mem = iv
	case "br":
		m.Br = iv
	case "width":
		m.Width = iv
	case "buses":
		m.Buses = iv
	case "ruu":
		m.RUU = iv
	case "stations":
		m.Stations = iv
	case "membanks":
		m.MemBanks = iv
	default:
		if unit, ok := strings.CutPrefix(name, "fulat."); ok {
			if m.FULat == nil {
				m.FULat = map[string]int{}
			}
			m.FULat[unit] = iv
			return
		}
		if unit, ok := strings.CutPrefix(name, "fucount."); ok {
			if m.FUCount == nil {
				m.FUCount = map[string]int{}
			}
			m.FUCount[unit] = iv
			return
		}
		panic(fmt.Sprintf("dse: unvalidated axis %q", name))
	}
}

// Expand enumerates the cartesian product of the axes over the base
// spec, canonicalizes every combination, and deduplicates by content
// key. Combinations that do not canonicalize — an explicit bus count
// on a non-crossbar interconnect, say — are dropped and counted, not
// fatal: a rectangular grid over a non-rectangular space always has
// holes. The expansion product is bounded by MaxPoints before any
// work happens.
//
// Call on a canonical sweep (from Parse or Canonicalize). The specs
// return sorted by content key, so expansion order is deterministic.
func (s SweepSpec) Expand() (specs []machdef.Spec, expanded, invalid int, err error) {
	names := make([]string, 0, len(s.Axes))
	product := 1
	for name, a := range s.Axes {
		names = append(names, name)
		product *= a.len()
		if product > s.MaxPoints {
			return nil, 0, 0, fmt.Errorf("dse: sweep expands to at least %d points, over the %d-point cap; shrink the axes or raise maxpoints", product, s.MaxPoints)
		}
	}
	sort.Strings(names)

	seen := make(map[string]int, product)
	idx := make([]int, len(names))
	for {
		m := s.Base
		// The base's unit maps are shared across combinations; give
		// this point private copies before any per-unit axis writes.
		m.FULat = cloneMap(m.FULat)
		m.FUCount = cloneMap(m.FUCount)
		for i, name := range names {
			a := s.Axes[name]
			if len(a.Strs) > 0 {
				applyAxis(&m, name, 0, a.Strs[idx[i]])
			} else {
				applyAxis(&m, name, a.Ints[idx[i]], "")
			}
		}
		expanded++
		if c, cerr := machdef.Canonicalize(m); cerr != nil || c.Kind == "vector" {
			invalid++
		} else if _, dup := seen[c.Key()]; !dup {
			seen[c.Key()] = len(specs)
			specs = append(specs, c)
		}

		// Advance the mixed-radix counter.
		i := len(names) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < s.Axes[names[i]].len() {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Key() < specs[b].Key() })
	return specs, expanded, invalid, nil
}

func cloneMap(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
