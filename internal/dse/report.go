package dse

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// specLabel renders a canonical spec compactly for the text report:
// its canonical JSON, which is short thanks to omitempty.
func specLabel(p *Point) string {
	b, err := json.Marshal(p.Spec)
	if err != nil {
		return p.Spec.Kind
	}
	return string(b)
}

// Render formats the sweep outcome as aligned text: the tallies, the
// model calibration, and the Pareto frontier cost-ascending.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep %.12s  loops=%s", r.SweepKey, r.Loops)
	if r.Scale > 0 {
		fmt.Fprintf(&b, " scale=%d", r.Scale)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "expanded %d  invalid %d  distinct %d  pruned %d  simulated %d  journal %d  failed %d\n",
		r.Expanded, r.Invalid, r.Deduped, r.Pruned, r.Simulated, r.FromJournal, r.Failed)
	if r.Model.Pairs > 0 {
		fmt.Fprintf(&b, "model: frontier agreement %.0f%% over %d pairs, mean |model-sim|/sim %.2f\n",
			100*r.Model.FrontierAgreement, r.Model.Pairs, r.Model.MeanAbsRelErr)
	}
	fmt.Fprintf(&b, "Pareto frontier (%d points):\n", len(r.FrontierIdx))
	fmt.Fprintf(&b, "%10s %8s %8s  %s\n", "COST", "RATE", "MODEL", "MACHINE")
	for _, i := range r.FrontierIdx {
		p := &r.Points[i]
		fmt.Fprintf(&b, "%10.0f %8.3f %8.3f  %s\n", p.Cost, p.Rate, p.Model, specLabel(p))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the full report, indented.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders every point, one row each, frontier and pruning status
// included, so the sweep can be replotted without rerunning.
func (r *Report) CSV() (string, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{"cost", "rate", "model", "pruned", "frontier", "fromjournal", "err", "spec"}); err != nil {
		return "", err
	}
	for i := range r.Points {
		p := &r.Points[i]
		rec := []string{
			strconv.FormatFloat(p.Cost, 'f', -1, 64),
			strconv.FormatFloat(p.Rate, 'g', -1, 64),
			strconv.FormatFloat(p.Model, 'g', -1, 64),
			strconv.FormatBool(p.Pruned),
			strconv.FormatBool(p.Frontier),
			strconv.FormatBool(p.FromJournal),
			p.Err,
			specLabel(p),
		}
		if err := w.Write(rec); err != nil {
			return "", err
		}
	}
	w.Flush()
	return buf.String(), w.Error()
}
