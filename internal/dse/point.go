package dse

import (
	"context"
	"fmt"

	"mfup/internal/core"
	"mfup/internal/machdef"
	"mfup/internal/runner"
	"mfup/internal/stats"
)

// PointSpec is one sweep point as a standalone, addressable unit of
// work: a single machine definition over a sweep workload. It is the
// currency of cluster sharding — the router decomposes a sweep into
// PointSpecs and dispatches each to the worker that owns its content
// key, and any worker can compute any point because the key scheme
// (and therefore the journal line it produces) is shared by
// construction with the in-process sweep driver.
//
// Extrapolate is carried for execution but excluded from the key: the
// extrapolation engine is bit-identical to full simulation by
// contract, so the rate is the same either way.
type PointSpec struct {
	Spec        machdef.Spec `json:"spec"`
	Loops       string       `json:"loops,omitempty"` // scalar (default) | vectorizable | all
	Scale       int          `json:"scale,omitempty"`
	Extrapolate bool         `json:"extrapolate,omitempty"`
}

// Canonicalize validates the point and rewrites it into the normal
// form Key hashes: machine definition canonicalized, workload
// defaults spelled out, under the same rules as a sweep's.
func (p PointSpec) Canonicalize() (PointSpec, error) {
	c := p
	spec, err := machdef.Canonicalize(c.Spec)
	if err != nil {
		return c, fmt.Errorf("dse: point: %w", err)
	}
	if spec.Kind == "vector" {
		return c, fmt.Errorf("dse: point: the vector machine has its own datapath and is outside the sweep space")
	}
	c.Spec = spec
	switch c.Loops {
	case "", "scalar":
		c.Loops = "scalar"
	case "vectorizable", "all":
	default:
		return c, fmt.Errorf("dse: point: loops %q: want scalar, vectorizable, or all", p.Loops)
	}
	if c.Scale < 0 {
		return c, fmt.Errorf("dse: point: scale %d cannot be negative", c.Scale)
	}
	return c, nil
}

// Key returns the point's content address under the sweep journal's
// key scheme. Call Canonicalize first: the key is a function of the
// canonical form, and two respellings of the same point must collide.
func (p PointSpec) Key() string {
	return pointKey(SweepSpec{Loops: p.Loops, Scale: p.Scale}, p.Spec.Key())
}

// Run simulates the point and returns its harmonic-mean issue rate,
// bit-identical to the rate the in-process sweep driver would record
// for the same key. Errors pass through the runner's classification,
// so runner.Transient distinguishes a deadline from a divergence.
func (p PointSpec) Run(ctx context.Context, limits core.Limits) (float64, error) {
	c, err := p.Canonicalize()
	if err != nil {
		return 0, err
	}
	ts, virtual, _ := tracesFor(SweepSpec{Loops: c.Loops, Scale: c.Scale, Extrapolate: c.Extrapolate})
	if len(ts) == 0 {
		return 0, fmt.Errorf("dse: point: workload %q selects no loops", c.Loops)
	}
	spec := c.Spec
	mk := func() core.Machine {
		m, err := spec.New()
		if err != nil {
			panic(fmt.Sprintf("dse: point %s: %v", spec.Key(), err))
		}
		return m
	}
	if c.Extrapolate {
		inner := mk
		mk = func() core.Machine {
			return core.Extrapolate(inner()).WithVirtual(virtual).BestEffort()
		}
	}
	results, _, errs := runner.RunCheckedStats(ctx, runner.Options{
		Parallel: 1, // a point is one unit of the cluster's parallelism, not a pool of its own
		Limits:   limits,
	}, []runner.Task{{New: mk, Traces: ts}})
	if len(errs) > 0 {
		return 0, errs[0]
	}
	rs := make([]float64, 0, len(results[0]))
	for _, res := range results[0] {
		rate := res.IssueRate()
		if !(rate > 0) {
			return 0, fmt.Errorf("dse: point %s: non-positive issue rate on %s", c.Key(), res.Trace)
		}
		rs = append(rs, rate)
	}
	return stats.HarmonicMean(rs), nil
}
