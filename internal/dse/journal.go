package dse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"mfup/internal/atomicio"
	"mfup/internal/faultinject"
)

// Journal is the sweep's resume mechanism: a JSONL file with one line
// per simulated point, keyed by the point's full content key — the
// machine definition's content address plus the workload (loop class
// and scale). Unlike the table checkpoint, which keys cells by grid
// position and therefore needs a signature header, a mismatched
// resume here misses by construction: change anything that affects a
// point's rate and its key changes with it, so the stale line is
// simply never looked up.
//
// One line per point:
//
//	{"key":"dse-point/...","rate":"0x1.9c7ep-01"}
//
// Rates are hex float literals, which round-trip exactly. The same
// crash-safety story as the table checkpoint applies: append-only
// writes, an exclusive advisory lock, and a torn final line dropped
// and truncated away on open.
type Journal struct {
	path string

	mu     sync.Mutex
	f      *os.File
	rates  map[string]float64
	loaded int
	saved  int
	err    error // first write failure, sticky
}

// journalLine is the JSONL wire form.
type journalLine struct {
	Key  string `json:"key"`
	Rate string `json:"rate"`
}

// OpenJournal opens (creating if absent) the sweep journal at path,
// loading every complete line. Unparseable complete lines are errors;
// a torn final line is dropped and truncated away.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dse journal: %w", err)
	}
	if err := atomicio.Lock(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("dse journal: %w", err)
	}
	j := &Journal{path: path, f: f, rates: make(map[string]float64)}
	r := bufio.NewReader(f)
	var accepted int64
	lineno := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dse journal %s: %w", path, err)
		}
		lineno++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) != 0 {
			var jl journalLine
			if err := json.Unmarshal(trimmed, &jl); err != nil {
				f.Close()
				return nil, fmt.Errorf("dse journal %s line %d: %v", path, lineno, err)
			}
			rate, err := strconv.ParseFloat(jl.Rate, 64)
			if err != nil || jl.Key == "" {
				f.Close()
				return nil, fmt.Errorf("dse journal %s line %d: bad record %s", path, lineno, trimmed)
			}
			j.rates[jl.Key] = rate
		}
		accepted += int64(len(line))
	}
	if err := f.Truncate(accepted); err != nil {
		f.Close()
		return nil, fmt.Errorf("dse journal %s: %w", path, err)
	}
	if _, err := f.Seek(accepted, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("dse journal %s: %w", path, err)
	}
	j.loaded = len(j.rates)
	return j, nil
}

// Lookup returns the journaled rate for a point key, if present.
func (j *Journal) Lookup(key string) (float64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rates[key]
	return r, ok
}

// Record journals one simulated point. Non-finite and zero rates are
// skipped — failed points must be re-attempted on resume. Write
// failures are sticky and reported by Close.
func (j *Journal) Record(key string, rate float64) {
	if rate != rate || rate == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.rates[key]; dup {
		return
	}
	j.rates[key] = rate
	if j.err != nil {
		return
	}
	line, err := json.Marshal(journalLine{Key: key, Rate: strconv.FormatFloat(rate, 'x', -1, 64)})
	if err != nil {
		j.err = err
		return
	}
	w := faultinject.WrapWriter("write.dsejournal", j.f)
	if _, err := w.Write(append(line, '\n')); err != nil {
		j.err = fmt.Errorf("dse journal %s: %w", j.path, err)
		return
	}
	j.saved++
}

// Loaded reports how many points an existing journal contributed;
// Saved how many this process appended.
func (j *Journal) Loaded() int { return j.loaded }

// Saved reports how many points this process appended.
func (j *Journal) Saved() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.saved
}

// Flush makes the journal durable without closing it.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = fmt.Errorf("dse journal %s: %w", j.path, err)
	}
	return j.err
}

// Close syncs and closes the journal, returning the first write
// failure of its lifetime.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if serr := j.f.Sync(); serr != nil && j.err == nil {
		j.err = fmt.Errorf("dse journal %s: %w", j.path, serr)
	}
	if cerr := j.f.Close(); cerr != nil && j.err == nil {
		j.err = cerr
	}
	return j.err
}
