package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mfup/internal/faultinject"
)

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile("write.test", path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary survived a commit")
	}
}

func TestCommitReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile("write.test", path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Errorf("destination = %q, want %q", got, "new")
	}
}

func TestAbortLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create("write.test", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-written garbage")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Errorf("destination = %q after abort, want %q", got, "old")
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Errorf("directory has %d entries after abort, want 1", len(ents))
	}
	// A second Abort and a post-abort Commit are both inert.
	f.Abort()
	if err := f.Commit(); err != nil {
		t.Errorf("Commit after Abort = %v, want nil", err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Error("Write after Abort succeeded")
	}
}

func TestInjectedWriteFaultLeavesNoFile(t *testing.T) {
	plan, err := faultinject.ParsePlan("write.test:werr", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	err = WriteFile("write.test", path, []byte("doomed"))
	var ferr *faultinject.Error
	if !errors.As(err, &ferr) {
		t.Fatalf("err = %v, want an injected *faultinject.Error", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Errorf("injected write fault left %d files behind", len(ents))
	}

	// Other sites are unaffected while the plan is active.
	clean := filepath.Join(dir, "clean.json")
	if err := WriteFile("write.other", clean, []byte("fine")); err != nil {
		t.Errorf("unfaulted site failed: %v", err)
	}
}

func TestInjectedShortWriteSurfaces(t *testing.T) {
	plan, err := faultinject.ParsePlan("write.test:short", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile("write.test", path, []byte("truncated payload")); err == nil {
		t.Fatal("short write did not surface as an error")
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("short write left %d files behind", len(ents))
	}
}
