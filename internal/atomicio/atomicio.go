// Package atomicio is the one way the simulator suite writes files.
// Every export — tables, metrics, traces, profiles, checkpoints —
// goes through a temp+rename+fsync writer, so a killed process (or an
// injected write fault) never leaves a torn half-written file at the
// destination: the file either appears complete or not at all.
//
// Each opened file names its fault-injection site ("write.metrics",
// "write.trace", ...), the hook point at which internal/faultinject
// wraps the data path with failing or short-write io.Writers during
// chaos runs. With injection off the wrapper is the file itself.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mfup/internal/faultinject"
)

// File is an in-progress atomic write. Data accumulates in a
// temporary file next to the destination; Commit syncs, closes, and
// renames it into place, Abort discards it. Exactly one of the two
// must be called; both are safe to call again after the first (so
// Abort can sit in a defer).
type File struct {
	site string
	path string
	tmp  *os.File
	w    io.Writer // tmp, possibly fault-wrapped
	done bool
}

// Create opens an atomic write to path for the named fault-injection
// site. The temporary lives in path's directory (rename must not
// cross filesystems) under a name derived from it.
func Create(site, path string) (*File, error) {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &File{
		site: site,
		path: path,
		tmp:  tmp,
		w:    faultinject.WrapWriter(site, tmp),
	}, nil
}

// Write appends to the in-progress file.
func (f *File) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("atomicio: write to %s after commit/abort", f.path)
	}
	n, err := f.w.Write(p)
	if err != nil {
		return n, fmt.Errorf("atomicio: writing %s: %w", f.path, err)
	}
	if n < len(p) {
		return n, fmt.Errorf("atomicio: writing %s: %w", f.path, io.ErrShortWrite)
	}
	return n, nil
}

// Commit makes the write durable and visible: fsync the temporary,
// close it, rename it over the destination, and fsync the directory
// so the rename itself survives a crash. On any failure the
// temporary is removed and the destination is untouched.
func (f *File) Commit() error {
	if f.done {
		return nil
	}
	f.done = true
	if err := f.tmp.Sync(); err != nil {
		f.discard()
		return fmt.Errorf("atomicio: syncing %s: %w", f.path, err)
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: closing %s: %w", f.path, err)
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	// Best effort: a directory that cannot be opened or synced does
	// not un-write the file, and not every filesystem supports it.
	if dir, err := os.Open(filepath.Dir(f.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Abort discards the in-progress write, leaving the destination as it
// was. Safe after Commit (it does nothing then), so callers can
// `defer f.Abort()` right after Create.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.discard()
}

func (f *File) discard() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// WriteFile atomically writes data to path: the convenience form for
// exports that have the whole payload in memory.
func WriteFile(site, path string, data []byte) error {
	f, err := Create(site, path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Commit()
}
