package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Two opens of the same journal must not both win the advisory lock:
// flock lives on the open file description, so even within one
// process the second handle is refused with a structured *LockError.
func TestLockExcludesSecondOpener(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	a, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := Lock(a); err != nil {
		t.Fatalf("first lock: %v", err)
	}

	b, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	err = Lock(b)
	if err == nil {
		t.Fatal("second opener acquired the lock; journals would interleave")
	}
	var le *LockError
	if !errors.As(err, &le) {
		t.Fatalf("second lock error = %v (%T), want *LockError", err, err)
	}
	if le.Path != path {
		t.Errorf("LockError.Path = %q, want %q", le.Path, path)
	}

	// Releasing the first handle (close) frees the lock for the second.
	a.Close()
	if err := Lock(b); err != nil {
		t.Fatalf("lock after holder closed: %v", err)
	}
}

func TestUnlockReleasesEarly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	a, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := Lock(a); err != nil {
		t.Fatal(err)
	}
	if err := Unlock(a); err != nil {
		t.Fatal(err)
	}
	b, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := Lock(b); err != nil {
		t.Fatalf("lock after explicit unlock: %v", err)
	}
}
