package atomicio

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// Advisory file locking for append-only journals.
//
// The checkpoint journal (internal/tables) and the daemon's result
// cache (internal/serve) are both append-only JSONL files whose
// crash-safety story assumes a single writer: two processes
// interleaving appends would fuse records into lines neither writer
// produced, which the torn-tail recovery cannot repair (it only
// trusts the *final* line to be damaged). An exclusive flock on the
// journal file makes the single-writer assumption explicit: the
// second opener — say, a stray `mfutables -checkpoint` run against a
// journal a daemon is serving from — fails immediately with a
// structured *LockError instead of silently corrupting the file.
//
// The lock is advisory and lives on the open file description, so it
// conflicts between a daemon and a CLI, between two daemons, and even
// between two opens in one process; it vanishes automatically when
// the holder's descriptor closes (including on kill -9, which is
// exactly when a stale on-disk lockfile would have wedged a restart).

// LockError reports that another process (or another handle in this
// one) holds the advisory lock on a journal.
type LockError struct {
	Path string
}

// Error renders the one-line diagnostic the CLIs print.
func (e *LockError) Error() string {
	return fmt.Sprintf("atomicio: %s is locked by another process (close the other writer, or give this one its own journal)", e.Path)
}

// Lock takes a non-blocking exclusive advisory lock (flock) on f.
// If another holder has it, the returned error unwraps to a
// *LockError naming the path. The lock releases when f closes.
func Lock(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return &LockError{Path: f.Name()}
	}
	return fmt.Errorf("atomicio: locking %s: %w", f.Name(), err)
}

// Unlock drops the advisory lock early. Closing the file releases it
// anyway; Unlock exists for handovers that outlive the descriptor.
func Unlock(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		return fmt.Errorf("atomicio: unlocking %s: %w", f.Name(), err)
	}
	return nil
}
