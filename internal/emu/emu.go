// Package emu is the architectural emulator: it executes an
// isa.Program over register and memory state, producing both the
// program's results (for numeric validation against reference
// implementations) and the dynamic instruction trace that drives the
// timing simulators.
//
// The emulator is purely functional/architectural — it knows nothing
// about cycles, functional-unit occupancy, or issue rules. Timing is
// entirely the business of the machine models in internal/core, which
// consume the trace this package produces. That separation mirrors
// the paper's methodology: "Instruction traces were generated for each
// of the benchmark programs and then used to drive the simulations."
package emu

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"mfup/internal/isa"
	"mfup/internal/trace"
)

// DefaultMemoryWords is the size of a Machine's memory when none is
// specified: 1 Mi 64-bit words, far more than any built-in kernel
// needs.
const DefaultMemoryWords = 1 << 20

// DefaultStepLimit bounds the dynamic instruction count of a single
// Run, so a buggy kernel with a non-terminating loop yields an error
// instead of a hang.
const DefaultStepLimit = 50_000_000

// ErrStepLimit is returned (wrapped) when a program exceeds the step
// limit.
var ErrStepLimit = errors.New("emu: dynamic step limit exceeded")

// Machine is the architectural state: the four register files and
// word-addressed memory.
type Machine struct {
	A [isa.NumA]int64
	S [isa.NumS]uint64
	B [isa.NumB]int64
	T [isa.NumT]uint64

	// Vector extension state: eight 64-element vector registers and
	// the vector length.
	V  [isa.NumV][isa.VecLen]uint64
	VL int64

	Mem []uint64

	// StepLimit bounds Run; 0 means DefaultStepLimit.
	StepLimit int64
}

// New returns a machine with the given number of memory words
// (DefaultMemoryWords if words <= 0).
func New(words int) *Machine {
	if words <= 0 {
		words = DefaultMemoryWords
	}
	return &Machine{Mem: make([]uint64, words)}
}

// Reset clears all registers. Memory is left untouched so a caller
// can lay out data once and run several programs over it.
func (m *Machine) Reset() {
	m.A = [isa.NumA]int64{}
	m.S = [isa.NumS]uint64{}
	m.B = [isa.NumB]int64{}
	m.T = [isa.NumT]uint64{}
	m.V = [isa.NumV][isa.VecLen]uint64{}
	m.VL = 0
}

// Float returns memory word addr interpreted as a float64.
func (m *Machine) Float(addr int64) float64 {
	return math.Float64frombits(m.Mem[addr])
}

// SetFloat stores f into memory word addr.
func (m *Machine) SetFloat(addr int64, f float64) {
	m.Mem[addr] = math.Float64bits(f)
}

// Int returns memory word addr interpreted as an int64.
func (m *Machine) Int(addr int64) int64 { return int64(m.Mem[addr]) }

// SetInt stores v into memory word addr.
func (m *Machine) SetInt(addr int64, v int64) { m.Mem[addr] = uint64(v) }

// SFloat returns scalar register i as a float64.
func (m *Machine) SFloat(i int) float64 { return math.Float64frombits(m.S[i]) }

// SetSFloat sets scalar register i to the float64 f.
func (m *Machine) SetSFloat(i int, f float64) { m.S[i] = math.Float64bits(f) }

// RuntimeError describes a fault during emulation, with the dynamic
// and static positions at which it occurred.
type RuntimeError struct {
	Program string
	PC      int
	Seq     int64
	Err     error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("emu: %s: pc=%d seq=%d: %v", e.Program, e.PC, e.Seq, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// Run executes p to completion (PC falling off the end of the code)
// and returns the dynamic trace. Register state and memory reflect
// the completed execution.
func (m *Machine) Run(p *isa.Program) (*trace.Trace, error) {
	limit := m.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}
	t := &trace.Trace{Name: p.Name}
	pc := 0
	var seq int64
	fail := func(err error) (*trace.Trace, error) {
		return nil, &RuntimeError{Program: p.Name, PC: pc, Seq: seq, Err: err}
	}
	for pc < len(p.Code) {
		if seq >= limit {
			return fail(ErrStepLimit)
		}
		in := &p.Code[pc]
		op := trace.Op{
			Seq:     seq,
			PC:      pc,
			Code:    in.Op,
			Unit:    in.Unit(),
			Parcels: int8(in.Parcels()),
			Dst:     in.Dst,
			Src1:    in.Src1,
			Src2:    in.Src2,
		}
		next := pc + 1
		switch in.Op {
		case isa.OpPass:
			// nothing

		case isa.OpAAdd:
			m.A[in.Dst.Index()] = m.A[in.Src1.Index()] + m.A[in.Src2.Index()]
		case isa.OpASub:
			m.A[in.Dst.Index()] = m.A[in.Src1.Index()] - m.A[in.Src2.Index()]
		case isa.OpAMul:
			m.A[in.Dst.Index()] = m.A[in.Src1.Index()] * m.A[in.Src2.Index()]
		case isa.OpAImm:
			m.A[in.Dst.Index()] = in.Imm
		case isa.OpAAddImm:
			m.A[in.Dst.Index()] = m.A[in.Src1.Index()] + in.Imm

		case isa.OpSAdd:
			m.S[in.Dst.Index()] = uint64(int64(m.S[in.Src1.Index()]) + int64(m.S[in.Src2.Index()]))
		case isa.OpSSub:
			m.S[in.Dst.Index()] = uint64(int64(m.S[in.Src1.Index()]) - int64(m.S[in.Src2.Index()]))
		case isa.OpSAnd:
			m.S[in.Dst.Index()] = m.S[in.Src1.Index()] & m.S[in.Src2.Index()]
		case isa.OpSOr:
			m.S[in.Dst.Index()] = m.S[in.Src1.Index()] | m.S[in.Src2.Index()]
		case isa.OpSXor:
			m.S[in.Dst.Index()] = m.S[in.Src1.Index()] ^ m.S[in.Src2.Index()]
		case isa.OpSShiftL:
			m.S[in.Dst.Index()] = m.S[in.Src1.Index()] << uint(in.Imm)
		case isa.OpSShiftR:
			m.S[in.Dst.Index()] = m.S[in.Src1.Index()] >> uint(in.Imm)
		case isa.OpSImm:
			m.S[in.Dst.Index()] = uint64(in.Imm)
		case isa.OpSPop:
			m.S[in.Dst.Index()] = uint64(bits.OnesCount64(m.S[in.Src1.Index()]))
		case isa.OpSLZ:
			m.S[in.Dst.Index()] = uint64(bits.LeadingZeros64(m.S[in.Src1.Index()]))

		case isa.OpFAdd:
			m.setF(in.Dst, m.f(in.Src1)+m.f(in.Src2))
		case isa.OpFSub:
			m.setF(in.Dst, m.f(in.Src1)-m.f(in.Src2))
		case isa.OpFMul:
			m.setF(in.Dst, m.f(in.Src1)*m.f(in.Src2))
		case isa.OpRecip:
			// The CRAY-1 reciprocal-approximation unit delivers ~30
			// correct bits; kernels refine with a Newton step. We
			// compute the exact reciprocal, which makes the Newton
			// step a timing no-op and keeps validation simple.
			m.setF(in.Dst, 1/m.f(in.Src1))

		case isa.OpMoveAS:
			m.A[in.Dst.Index()] = int64(m.S[in.Src1.Index()])
		case isa.OpMoveSA:
			m.S[in.Dst.Index()] = uint64(m.A[in.Src1.Index()])
		case isa.OpMoveAB:
			m.A[in.Dst.Index()] = m.B[in.Src1.Index()]
		case isa.OpMoveBA:
			m.B[in.Dst.Index()] = m.A[in.Src1.Index()]
		case isa.OpMoveST:
			m.S[in.Dst.Index()] = m.T[in.Src1.Index()]
		case isa.OpMoveTS:
			m.T[in.Dst.Index()] = m.S[in.Src1.Index()]

		case isa.OpFix:
			m.A[in.Dst.Index()] = int64(m.f(in.Src1))
		case isa.OpFloat:
			m.setF(in.Dst, float64(m.A[in.Src1.Index()]))

		case isa.OpLoadS, isa.OpLoadA, isa.OpStoreS, isa.OpStoreA:
			addr := m.A[in.Src1.Index()] + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return fail(fmt.Errorf("memory access out of range: address %d (memory %d words)", addr, len(m.Mem)))
			}
			op.Addr = addr
			switch in.Op {
			case isa.OpLoadS:
				m.S[in.Dst.Index()] = m.Mem[addr]
			case isa.OpLoadA:
				m.A[in.Dst.Index()] = int64(m.Mem[addr])
			case isa.OpStoreS:
				m.Mem[addr] = m.S[in.Src2.Index()]
			case isa.OpStoreA:
				m.Mem[addr] = uint64(m.A[in.Src2.Index()])
			}

		case isa.OpJ:
			op.Taken = true
			next = in.Target
		case isa.OpJAZ, isa.OpJAN, isa.OpJAP, isa.OpJAM:
			taken := false
			a0 := m.A[0]
			switch in.Op {
			case isa.OpJAZ:
				taken = a0 == 0
			case isa.OpJAN:
				taken = a0 != 0
			case isa.OpJAP:
				taken = a0 >= 0
			case isa.OpJAM:
				taken = a0 < 0
			}
			op.Taken = taken
			if taken {
				next = in.Target
			}

		case isa.OpVLSet:
			m.VL = m.A[in.Src1.Index()]
			if m.VL < 0 || m.VL > isa.VecLen {
				return fail(fmt.Errorf("VL = %d outside [0, %d]", m.VL, isa.VecLen))
			}

		case isa.OpVLoad, isa.OpVStore:
			base := m.A[in.Src1.Index()]
			stride := in.Imm
			last := base + stride*(m.VL-1)
			if m.VL > 0 && (base < 0 || base >= int64(len(m.Mem)) || last < 0 || last >= int64(len(m.Mem))) {
				return fail(fmt.Errorf("vector access out of range: base %d stride %d length %d", base, stride, m.VL))
			}
			op.Addr = base
			op.Stride = stride
			op.VLen = int16(m.VL)
			if in.Op == isa.OpVLoad {
				vd := in.Dst.Index()
				for i := int64(0); i < m.VL; i++ {
					m.V[vd][i] = m.Mem[base+stride*i]
				}
			} else {
				vs := in.Src2.Index()
				for i := int64(0); i < m.VL; i++ {
					m.Mem[base+stride*i] = m.V[vs][i]
				}
			}

		case isa.OpVFAdd, isa.OpVFSub, isa.OpVFMul:
			op.VLen = int16(m.VL)
			vd, v1, v2 := in.Dst.Index(), in.Src1.Index(), in.Src2.Index()
			for i := int64(0); i < m.VL; i++ {
				a := math.Float64frombits(m.V[v1][i])
				b := math.Float64frombits(m.V[v2][i])
				var r float64
				switch in.Op {
				case isa.OpVFAdd:
					r = a + b
				case isa.OpVFSub:
					r = a - b
				case isa.OpVFMul:
					r = a * b
				}
				m.V[vd][i] = math.Float64bits(r)
			}

		case isa.OpVSFAdd, isa.OpVSFMul:
			op.VLen = int16(m.VL)
			vd, v2 := in.Dst.Index(), in.Src2.Index()
			s := math.Float64frombits(m.S[in.Src1.Index()])
			for i := int64(0); i < m.VL; i++ {
				b := math.Float64frombits(m.V[v2][i])
				var r float64
				if in.Op == isa.OpVSFAdd {
					r = s + b
				} else {
					r = s * b
				}
				m.V[vd][i] = math.Float64bits(r)
			}

		case isa.OpMoveSV:
			idx := m.A[in.Src2.Index()]
			if idx < 0 || idx >= isa.VecLen {
				return fail(fmt.Errorf("vector element index %d outside [0, %d)", idx, isa.VecLen))
			}
			m.S[in.Dst.Index()] = m.V[in.Src1.Index()][idx]

		default:
			return fail(fmt.Errorf("unimplemented opcode %s", in.Op))
		}
		t.Ops = append(t.Ops, op)
		seq++
		pc = next
	}
	return t, nil
}

func (m *Machine) f(r isa.Reg) float64 {
	return math.Float64frombits(m.S[r.Index()])
}

func (m *Machine) setF(r isa.Reg, v float64) {
	m.S[r.Index()] = math.Float64bits(v)
}
