package emu

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mfup/internal/asm"
	"mfup/internal/isa"
)

func runSrc(t *testing.T, src string) (*Machine, int) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(1 << 16)
	tr, err := m.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, tr.Len()
}

func TestAddressArithmetic(t *testing.T) {
	m, _ := runSrc(t, `
    A1 = 10
    A2 = 3
    A3 = A1 + A2
    A4 = A1 - A2
    A5 = A1 * A2
    A6 = A1 + 100
    A7 = A1 - 4
`)
	for i, want := range map[int]int64{3: 13, 4: 7, 5: 30, 6: 110, 7: 6} {
		if m.A[i] != want {
			t.Errorf("A%d = %d, want %d", i, m.A[i], want)
		}
	}
}

func TestScalarIntegerAndLogical(t *testing.T) {
	m, _ := runSrc(t, `
    S1 = 12
    S2 = 10
    S3 = S1 + S2
    S4 = S1 - S2
    S5 = S1 & S2
    S6 = S1 | S2
    S7 = S1 ^ S2
`)
	for i, want := range map[int]uint64{3: 22, 4: 2, 5: 8, 6: 14, 7: 6} {
		if m.S[i] != want {
			t.Errorf("S%d = %d, want %d", i, m.S[i], want)
		}
	}
}

func TestShifts(t *testing.T) {
	m, _ := runSrc(t, `
    S1 = 5
    S2 = S1 << 3
    S3 = S1 >> 1
`)
	if m.S[2] != 40 || m.S[3] != 2 {
		t.Errorf("shifts: S2=%d S3=%d, want 40, 2", m.S[2], m.S[3])
	}
}

func TestPopAndLZ(t *testing.T) {
	m, _ := runSrc(t, `
    S1 = 7
    S2 = POP S1
    S3 = LZ S1
`)
	if m.S[2] != 3 {
		t.Errorf("POP 7 = %d, want 3", m.S[2])
	}
	if m.S[3] != 61 {
		t.Errorf("LZ 7 = %d, want 61", m.S[3])
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _ := runSrc(t, `
    S1 = 1.5
    S2 = 2.5
    S3 = S1 +F S2
    S4 = S1 -F S2
    S5 = S1 *F S2
    S6 = 1 / S2
`)
	for i, want := range map[int]float64{3: 4.0, 4: -1.0, 5: 3.75, 6: 0.4} {
		if got := m.SFloat(i); got != want {
			t.Errorf("S%d = %v, want %v", i, got, want)
		}
	}
}

func TestTransfersAndConversions(t *testing.T) {
	m, _ := runSrc(t, `
    A1 = 42
    S1 = A1          ; integer into S
    A2 = S1          ; back to A
    B3 = A1
    A4 = B3
    S2 = 3.75
    T5 = S2
    S3 = T5
    A5 = FIX S2      ; truncates toward zero
    S4 = FLOAT A1
`)
	if m.A[2] != 42 || m.A[4] != 42 {
		t.Errorf("A transfers: A2=%d A4=%d, want 42", m.A[2], m.A[4])
	}
	if m.SFloat(3) != 3.75 {
		t.Errorf("T round trip: S3=%v, want 3.75", m.SFloat(3))
	}
	if m.A[5] != 3 {
		t.Errorf("FIX 3.75 = %d, want 3", m.A[5])
	}
	if m.SFloat(4) != 42.0 {
		t.Errorf("FLOAT 42 = %v, want 42.0", m.SFloat(4))
	}
}

func TestMemory(t *testing.T) {
	m, n := runSrc(t, `
    A1 = 100
    S1 = 6.25
    [A1 + 2] = S1
    S2 = [A1 + 2]
    A2 = 77
    [A1] = A2
    A3 = [A1]
`)
	if m.Float(102) != 6.25 || m.SFloat(2) != 6.25 {
		t.Error("scalar store/load failed")
	}
	if m.Int(100) != 77 || m.A[3] != 77 {
		t.Error("address store/load failed")
	}
	if n != 7 {
		t.Errorf("trace length %d, want 7", n)
	}
}

func TestBranchSemantics(t *testing.T) {
	// Count down from 3: the loop body runs exactly 3 times.
	m, _ := runSrc(t, `
    A0 = 3
    A7 = 1
    A2 = 0
loop:
    A2 = A2 + A7
    A0 = A0 - A7
    JAN loop
`)
	if m.A[2] != 3 {
		t.Errorf("loop ran %d times, want 3", m.A[2])
	}
}

func TestConditionalBranchPredicates(t *testing.T) {
	// Each predicate is exercised against a positive, zero, and
	// negative A0. The program records which branches were taken by
	// incrementing distinct A registers at the target.
	m, _ := runSrc(t, `
    A7 = 1
    A0 = 0
    JAZ z_taken
    PASS
z_taken:
    A0 = 5
    JAP p_taken
    PASS
p_taken:
    A0 = A0 - 10     ; A0 = -5
    JAM m_taken
    PASS
m_taken:
    JAN n_taken
    PASS
n_taken:
    A0 = 0
    JAN not_taken    ; must fall through
    A2 = A2 + A7     ; executed only on fall-through
not_taken:
    JAP end          ; A0 == 0 counts as positive
    A3 = A3 + A7     ; must be skipped
end:
`)
	if m.A[2] != 1 {
		t.Error("JAN with A0=0 did not fall through")
	}
	if m.A[3] != 0 {
		t.Error("JAP with A0=0 did not take the branch")
	}
}

func TestTraceRecordsBranchOutcomes(t *testing.T) {
	p, err := asm.Assemble("t", `
    A0 = 1
    A7 = 1
loop:
    A0 = A0 - A7
    JAN loop
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(0)
	tr, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Ops[len(tr.Ops)-1]
	if !last.IsBranch() || last.Taken {
		t.Errorf("final branch: IsBranch=%v Taken=%v, want true,false", last.IsBranch(), last.Taken)
	}
}

func TestTraceRecordsAddresses(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 200
    S1 = [A1 + 5]
    [A1 - 1] = S1
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 10)
	tr, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops[1].Addr != 205 {
		t.Errorf("load address = %d, want 205", tr.Ops[1].Addr)
	}
	if tr.Ops[2].Addr != 199 {
		t.Errorf("store address = %d, want 199", tr.Ops[2].Addr)
	}
}

func TestTraceSequenceAndPC(t *testing.T) {
	p, err := asm.Assemble("t", `
    A0 = 2
    A7 = 1
loop:
    A0 = A0 - A7
    JAN loop
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(0)
	tr, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic: A0=2, A7=1, (dec, JAN) x2 -> 6 ops.
	if tr.Len() != 6 {
		t.Fatalf("trace length %d, want 6", tr.Len())
	}
	for i, op := range tr.Ops {
		if op.Seq != int64(i) {
			t.Errorf("op %d: seq %d", i, op.Seq)
		}
	}
	if tr.Ops[4].PC != 2 {
		t.Errorf("second loop iteration pc = %d, want 2", tr.Ops[4].PC)
	}
}

func TestStepLimit(t *testing.T) {
	p, err := asm.Assemble("t", "loop:\n    J loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(0)
	m.StepLimit = 1000
	_, err = m.Run(p)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("infinite loop error = %v, want ErrStepLimit", err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T, want *RuntimeError", err)
	}
	if re.Seq != 1000 {
		t.Errorf("failed at seq %d, want 1000", re.Seq)
	}
}

func TestOutOfRangeMemory(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 100
    S1 = [A1 + 0]
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(50) // memory smaller than address 100
	_, err = m.Run(p)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range access error = %v", err)
	}
	// Negative addresses must also fail.
	p2, _ := asm.Assemble("t", `
    A1 = -5
    [A1] = A1
`)
	if _, err := New(50).Run(p2); err == nil {
		t.Error("negative address accepted")
	}
}

func TestResetClearsRegistersNotMemory(t *testing.T) {
	m := New(64)
	m.A[3] = 9
	m.S[2] = 7
	m.B[10] = 1
	m.T[10] = 1
	m.SetFloat(5, 2.5)
	m.Reset()
	if m.A[3] != 0 || m.S[2] != 0 || m.B[10] != 0 || m.T[10] != 0 {
		t.Error("Reset left register state")
	}
	if m.Float(5) != 2.5 {
		t.Error("Reset clobbered memory")
	}
}

func TestFloatHelpers(t *testing.T) {
	m := New(16)
	m.SetSFloat(1, -0.5)
	if m.SFloat(1) != -0.5 {
		t.Error("SFloat round trip failed")
	}
	m.SetInt(3, -12)
	if m.Int(3) != -12 {
		t.Error("Int round trip failed")
	}
}

func TestRecipExactness(t *testing.T) {
	m, _ := runSrc(t, `
    S1 = 8.0
    S2 = 1 / S1
`)
	if got := m.SFloat(2); got != 0.125 {
		t.Errorf("1/8 = %v, want 0.125", got)
	}
}

func TestSImmIntegerBitsAreNotFloats(t *testing.T) {
	m, _ := runSrc(t, "S1 = 63")
	if m.S[1] != 63 {
		t.Errorf("S1 = %d, want raw integer 63", m.S[1])
	}
	if m.SFloat(1) == 63.0 {
		t.Error("integer immediate produced float encoding")
	}
}

func TestMachineStateAfterKernelStyleRun(t *testing.T) {
	// A miniature recurrence kernel; verifies end-to-end emulation of
	// the idioms the Livermore kernels rely on (pointer bumping,
	// FIX/mask indexing through scalar unit).
	m, _ := runSrc(t, `
    A1 = 100
    S1 = 2.5
    [A1] = S1
    S2 = [A1]
    A2 = FIX S2
    S3 = A2
    S4 = 3
    S3 = S3 & S4
    A3 = S3
`)
	if m.A[2] != 2 {
		t.Errorf("FIX 2.5 = %d, want 2", m.A[2])
	}
	if m.A[3] != 2 {
		t.Errorf("mask path = %d, want 2", m.A[3])
	}
}

func TestRunPreservesIEEEBitPatterns(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 10
    S1 = [A1]
    [A1 + 1] = S1
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(64)
	bits := math.Float64bits(math.Pi)
	m.Mem[10] = bits
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Mem[11] != bits {
		t.Error("load/store altered bit pattern")
	}
}

func TestVectorExecution(t *testing.T) {
	p, err := asm.Assemble("v", `
    A1 = 100        ; source a
    A2 = 200        ; source b
    A3 = 300        ; destination
    A4 = 4
    VL = A4
    V1 = [A1 : 1]
    V2 = [A2 : 2]   ; strided
    V3 = V1 +F V2
    V4 = V1 *F V2
    V5 = V1 -F V2
    S1 = 10.0
    V6 = S1 +F V3
    V7 = S1 *F V3
    [A3 : 1] = V6
    A5 = 2
    S2 = V7 [ A5 ]  ; element read
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 10)
	a := []float64{1, 2, 3, 4}
	bvals := []float64{10, 20, 30, 40}
	for i := 0; i < 4; i++ {
		m.SetFloat(100+int64(i), a[i])
		m.SetFloat(200+int64(2*i), bvals[i]) // stride 2
	}
	tr, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := 10.0 + (a[i] + bvals[i])
		if got := m.Float(300 + int64(i)); got != want {
			t.Errorf("result[%d] = %v, want %v", i, got, want)
		}
	}
	if got := m.SFloat(2); got != 10.0*(a[2]+bvals[2]) {
		t.Errorf("element read = %v, want %v", got, 10.0*(a[2]+bvals[2]))
	}
	// Trace metadata: the strided load records base, stride, length.
	var vld *int
	for i := range tr.Ops {
		if tr.Ops[i].Code == isa.OpVLoad && tr.Ops[i].Stride == 2 {
			vld = &i
			break
		}
	}
	if vld == nil {
		t.Fatal("no strided vector load in trace")
	}
	op := tr.Ops[*vld]
	if op.Addr != 200 || op.VLen != 4 {
		t.Errorf("vector load metadata: addr=%d vlen=%d, want 200, 4", op.Addr, op.VLen)
	}
}

func TestVectorBoundsChecks(t *testing.T) {
	// VL out of range.
	p1, _ := asm.Assemble("v", `
    A1 = 100
    VL = A1
`)
	if _, err := New(0).Run(p1); err == nil {
		t.Error("VL = 100 accepted")
	}
	// Vector access off the end of memory.
	p2, _ := asm.Assemble("v", `
    A1 = 60
    A2 = 4
    VL = A2
    V1 = [A1 : 1]
`)
	if _, err := New(62).Run(p2); err == nil {
		t.Error("out-of-range vector load accepted")
	}
	// Element index out of range.
	p3, _ := asm.Assemble("v", `
    A1 = 64
    S1 = V1 [ A1 ]
`)
	if _, err := New(0).Run(p3); err == nil {
		t.Error("element index 64 accepted")
	}
}
