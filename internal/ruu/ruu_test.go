package ruu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mfup/internal/bus"
	"mfup/internal/isa"
	"mfup/internal/trace"
)

func cfg115(n, size int, kind bus.Kind) Config {
	return Config{MemLatency: 11, BranchLatency: 5, IssueUnits: n, Size: size, Bus: kind}
}

func mkOp(seq int, code isa.Opcode, dst, s1, s2 isa.Reg) trace.Op {
	return trace.Op{Seq: int64(seq), Code: code, Unit: code.Unit(),
		Parcels: int8(code.Parcels()), Dst: dst, Src1: s1, Src2: s2}
}

func TestSingleInstruction(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{mkOp(0, isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0))}}
	// Issue at 0, dispatch at 1, result at 7.
	if got := New(cfg115(1, 4, bus.Bus1)).Run(tr); got != 7 {
		t.Errorf("cycles = %d, want 7", got)
	}
}

func TestChainThroughBypass(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		mkOp(0, isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)), // dispatch 1, done 7
		mkOp(1, isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)), // wakes at 7, done 13
	}}
	if got := New(cfg115(2, 8, bus.BusN)).Run(tr); got != 13 {
		t.Errorf("cycles = %d, want 13", got)
	}
}

func TestIndependentOpsOverlap(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		mkOp(0, isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
		mkOp(1, isa.OpFMul, isa.S(2), isa.S(0), isa.S(0)),
	}}
	// Both issue at 0, dispatch at 1; FMul completes at 8.
	if got := New(cfg115(2, 8, bus.BusN)).Run(tr); got != 8 {
		t.Errorf("cycles = %d, want 8", got)
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// Four independent ops in distinct units. N=1: issue 0,1,2,3;
	// N=4: all issue at 0. The last dispatch difference shows up in
	// total cycles.
	ops := []trace.Op{
		mkOp(0, isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
		mkOp(1, isa.OpFMul, isa.S(2), isa.S(0), isa.S(0)),
		mkOp(2, isa.OpAAdd, isa.A(1), isa.A(2), isa.A(3)),
		mkOp(3, isa.OpSAdd, isa.S(3), isa.S(0), isa.S(0)),
	}
	narrow := New(cfg115(1, 8, bus.Bus1)).Run(&trace.Trace{Ops: ops})
	wide := New(cfg115(4, 8, bus.BusN)).Run(&trace.Trace{Ops: ops})
	if wide >= narrow {
		t.Errorf("wide issue (%d cycles) not faster than narrow (%d)", wide, narrow)
	}
	if wide != 8 { // FMul: issue 0, dispatch 1, done 8
		t.Errorf("wide = %d cycles, want 8", wide)
	}
}

func TestRUUFullBackpressure(t *testing.T) {
	// Eight independent 6-cycle adds: with 16 slots they pipeline one
	// per cycle; with 2 slots only two fit in flight across the
	// 6-cycle latency, so issue stalls on commits and throughput
	// drops to about one per three cycles.
	var ops []trace.Op
	for i := 0; i < 8; i++ {
		ops = append(ops, mkOp(i, isa.OpFAdd, isa.S(1+i%7), isa.S(0), isa.S(0)))
	}
	small := New(cfg115(1, 2, bus.Bus1)).Run(&trace.Trace{Ops: ops})
	big := New(cfg115(1, 16, bus.Bus1)).Run(&trace.Trace{Ops: ops})
	if small <= big+4 {
		t.Errorf("2-entry RUU (%d cycles) should be clearly slower than 16-entry (%d)", small, big)
	}
}

func TestInOrderCommit(t *testing.T) {
	// The transfer behind the reciprocal finishes early but must not
	// free its slot before the reciprocal commits; with one slot per
	// bank the third op waits for the commit chain.
	ops := []trace.Op{
		mkOp(0, isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg), // done 15
		mkOp(1, isa.OpSImm, isa.S(2), isa.NoReg, isa.NoReg), // done 2, commits >= 15
		mkOp(2, isa.OpSImm, isa.S(3), isa.NoReg, isa.NoReg),
	}
	got := New(cfg115(1, 2, bus.Bus1)).Run(&trace.Trace{Ops: ops})
	// Recip: issue 0, dispatch 1, done 15, commits 15. SImm1: issue 1
	// done 3. SImm2 needs a slot: only at 15 (recip commit) -> issue
	// 15, dispatch 16, done 17.
	if got != 17 {
		t.Errorf("cycles = %d, want 17", got)
	}
}

func TestBranchStallsIssue(t *testing.T) {
	ops := []trace.Op{
		{Seq: 0, Code: isa.OpJ, Unit: isa.Branch, Parcels: 2, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: true},
		mkOp(1, isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg),
	}
	got := New(cfg115(4, 16, bus.BusN)).Run(&trace.Trace{Ops: ops})
	// Branch at 0 resolves at 5; transfer issues 5, dispatches 6, done 7.
	if got != 7 {
		t.Errorf("cycles = %d, want 7", got)
	}
}

func TestStoreLoadDependence(t *testing.T) {
	st := mkOp(0, isa.OpStoreS, isa.NoReg, isa.A(1), isa.S(1))
	st.Addr = 64
	ldSame := mkOp(1, isa.OpLoadS, isa.S(2), isa.A(1), isa.NoReg)
	ldSame.Addr = 64
	ldOther := mkOp(2, isa.OpLoadS, isa.S(3), isa.A(1), isa.NoReg)
	ldOther.Addr = 65

	got := New(cfg115(4, 16, bus.BusN)).Run(&trace.Trace{Ops: []trace.Op{st, ldSame, ldOther}})
	// Store: issue 0, dispatch 1, completes 12. Dependent load wakes
	// at 12, dispatches 12 (bypass), completes 23. Independent load
	// dispatches at 2 (memory unit accepted the store at 1), done 13.
	if got != 23 {
		t.Errorf("cycles = %d, want 23", got)
	}
}

func TestStoreStoreOrdering(t *testing.T) {
	// Two stores to one address may not complete out of order; the
	// second waits on the first even though the memory unit would
	// accept it earlier.
	st1 := mkOp(0, isa.OpStoreS, isa.NoReg, isa.A(1), isa.S(1))
	st1.Addr = 7
	st2 := mkOp(1, isa.OpStoreS, isa.NoReg, isa.A(1), isa.S(2))
	st2.Addr = 7
	got := New(cfg115(2, 8, bus.BusN)).Run(&trace.Trace{Ops: []trace.Op{st1, st2}})
	// st1: dispatch 1, done 12; st2 wakes 12, dispatches 12, done 23.
	if got != 23 {
		t.Errorf("cycles = %d, want 23", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for name, c := range map[string]Config{
		"zero units":     {MemLatency: 11, BranchLatency: 5, Size: 8, Bus: bus.Bus1},
		"size too small": {MemLatency: 11, BranchLatency: 5, IssueUnits: 4, Size: 2, Bus: bus.BusN},
		"xbar":           {MemLatency: 11, BranchLatency: 5, IssueUnits: 2, Size: 8, Bus: bus.XBar},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(c)
		}()
	}
}

func TestSimulatorReusable(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		mkOp(0, isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
		mkOp(1, isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)),
	}}
	s := New(cfg115(2, 8, bus.BusN))
	if a, b := s.Run(tr), s.Run(tr); a != b {
		t.Errorf("reruns differ: %d vs %d", a, b)
	}
}

// TestRandomTracesTerminateAndRespectWidth: random well-formed traces
// always drain, and total cycles are at least the trivial lower bound
// ops/N (issue width) and at least the longest latency used.
func TestRandomTracesTerminateAndRespectWidth(t *testing.T) {
	codes := []isa.Opcode{
		isa.OpFAdd, isa.OpFMul, isa.OpAAdd, isa.OpSAdd, isa.OpSImm,
		isa.OpRecip, isa.OpLoadS, isa.OpStoreS, isa.OpJAN,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		size := n + rng.Intn(40)
		kind := bus.BusN
		if rng.Intn(2) == 0 {
			kind = bus.Bus1
		}
		var ops []trace.Op
		count := 1 + rng.Intn(120)
		for i := 0; i < count; i++ {
			code := codes[rng.Intn(len(codes))]
			var op trace.Op
			switch {
			case code == isa.OpJAN:
				op = trace.Op{Code: code, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: rng.Intn(2) == 0}
				op.Unit, op.Parcels = code.Unit(), int8(code.Parcels())
			case code == isa.OpLoadS:
				op = mkOp(i, code, isa.S(rng.Intn(8)), isa.A(rng.Intn(8)), isa.NoReg)
				op.Addr = int64(rng.Intn(8))
			case code == isa.OpStoreS:
				op = mkOp(i, code, isa.NoReg, isa.A(rng.Intn(8)), isa.S(rng.Intn(8)))
				op.Addr = int64(rng.Intn(8))
			case code == isa.OpSImm:
				op = mkOp(i, code, isa.S(rng.Intn(8)), isa.NoReg, isa.NoReg)
			case code == isa.OpRecip:
				op = mkOp(i, code, isa.S(rng.Intn(8)), isa.S(rng.Intn(8)), isa.NoReg)
			case code == isa.OpAAdd:
				op = mkOp(i, code, isa.A(rng.Intn(8)), isa.A(rng.Intn(8)), isa.A(rng.Intn(8)))
			default:
				op = mkOp(i, code, isa.S(rng.Intn(8)), isa.S(rng.Intn(8)), isa.S(rng.Intn(8)))
			}
			op.Seq = int64(i)
			ops = append(ops, op)
		}
		cycles := New(Config{MemLatency: 11, BranchLatency: 5, IssueUnits: n, Size: size, Bus: kind}).
			Run(&trace.Trace{Ops: ops})
		lower := int64((count + n - 1) / n)
		return cycles >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
