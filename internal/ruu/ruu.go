// Package ruu implements the Register Update Unit machine of §5.3 —
// multiple issue units with full dependency resolution (Sohi &
// Vajapeyam's RUU scheme [10, 13]).
//
// Instructions issue in order, up to N per cycle, into the RUU, where
// register renaming (per-register instance tracking) removes WAW and
// WAR hazards. Entries wait in the RUU for their operands, proceed to
// the functional units out of order when ready, receive results back
// over the functional-unit/RUU interconnect (with bypass: a result is
// usable the cycle it returns), and finally commit in program order
// to the register file, freeing their slot.
//
// Two interconnects are modeled, as in the paper:
//
//   - 1-Bus: one bus from the RUU to the functional units (one
//     dispatch per cycle), one bus back (one result per cycle), and
//     one bus to the register file (one commit per cycle).
//   - N-Bus (restricted): the RUU is partitioned into N banks, one
//     per issue unit, each with its own dispatch, result, and commit
//     bus; instruction k is issued to bank k mod N.
//
// Issue stalls when the RUU (bank) is full or when a branch is
// encountered: there is no speculation, so a branch holds the issue
// stage until it resolves, reading A0 through the bypass network as
// soon as the producing instruction's result returns.
package ruu

import (
	"fmt"
	"math"
	"time"

	"mfup/internal/bus"
	"mfup/internal/events"
	"mfup/internal/faultinject"
	"mfup/internal/fu"
	"mfup/internal/isa"
	"mfup/internal/mem"
	"mfup/internal/probe"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// Config parameterizes the simulator.
type Config struct {
	MemLatency    int
	BranchLatency int
	IssueUnits    int      // N
	Size          int      // total RUU entries
	Bus           bus.Kind // bus.BusN or bus.Bus1
	MemBanks      int      // 0 = ideal interleaved memory; see internal/mem

	// PerfectBranches removes all branch stalls (ideal prediction):
	// a branch costs one issue slot and nothing else. Ablation only;
	// the paper models no prediction.
	PerfectBranches bool

	// FULat and FUCount mirror core.Config: per-class latency
	// overrides (0 = CRAY-1 reference; Memory/Branch entries must stay
	// zero) and per-class replication (0 and 1 both mean one copy).
	FULat   [isa.NumUnits]int
	FUCount [isa.NumUnits]int
}

// Validate reports whether the configuration is structurally
// possible; it is what New asserts and NewChecked returns.
func (cfg Config) Validate() error {
	if cfg.MemLatency <= 0 || cfg.BranchLatency <= 0 {
		return fmt.Errorf("ruu: non-positive latency in config %+v", cfg)
	}
	if cfg.IssueUnits < 1 || cfg.Size < cfg.IssueUnits {
		return fmt.Errorf("ruu: bad config %+v (need IssueUnits >= 1 and Size >= IssueUnits)", cfg)
	}
	if cfg.Bus != bus.BusN && cfg.Bus != bus.Bus1 {
		return fmt.Errorf("ruu: unsupported interconnect %s", cfg.Bus)
	}
	if cfg.MemBanks < 0 {
		return fmt.Errorf("ruu: negative memory bank count %d", cfg.MemBanks)
	}
	for u := 0; u < isa.NumUnits; u++ {
		if cfg.FULat[u] < 0 {
			return fmt.Errorf("ruu: negative latency override %d for %s", cfg.FULat[u], isa.Unit(u))
		}
		if cfg.FULat[u] > 0 && (isa.Unit(u) == isa.Memory || isa.Unit(u) == isa.Branch) {
			return fmt.Errorf("ruu: %s latency is a machine parameter; set MemLatency/BranchLatency, not FULat", isa.Unit(u))
		}
		if cfg.FUCount[u] < 0 {
			return fmt.Errorf("ruu: negative copy count %d for %s", cfg.FUCount[u], isa.Unit(u))
		}
	}
	return nil
}

// latencies builds the latency table with any per-unit overrides.
func (cfg Config) latencies() isa.Latencies {
	l := isa.NewLatencies(cfg.MemLatency, cfg.BranchLatency)
	for u, cycles := range cfg.FULat {
		if cycles > 0 {
			l = l.WithOverride(isa.Unit(u), cycles)
		}
	}
	return l
}

// Limits bounds a checked run; it mirrors core.Limits (this package
// cannot import core, which wraps it). Zero fields disable the
// corresponding checks.
type Limits struct {
	MaxCycles   int64     // cycle budget; 0 = unlimited
	StallCycles int64     // no-forward-progress watchdog; 0 = off
	Deadline    time.Time // wall-clock bound; zero = none
}

// entry is one RUU slot in flight. Entries live in a fixed slab of
// cfg.Size slots (the architectural bound on in-flight instructions)
// and are recycled through a free list as instructions commit, so a
// run performs no per-instruction allocation.
type entry struct {
	seq     int64
	op      *trace.Op
	flags   trace.OpFlags // decoded classification, from the prepared trace
	addrID  int32         // dense memory-address id (-1 for non-memory ops)
	bank    int
	issueAt int64

	depCount   int
	waiters    []*entry
	readyAt    int64
	dispatched bool
	done       bool
	doneAt     int64
}

// eventWindow is the scheduling horizon ring size; it must exceed the
// largest functional-unit latency plus pipeline slack.
const eventWindow = 64

// cycleList is a ring of per-cycle entry lists with self-invalidating
// cycle tags (same trick as internal/bus).
type cycleList struct {
	cycle   [eventWindow]int64
	entries [eventWindow][]*entry
}

func (l *cycleList) add(c int64, e *entry) {
	i := c % eventWindow
	if l.cycle[i] != c {
		l.cycle[i] = c
		l.entries[i] = l.entries[i][:0]
	}
	l.entries[i] = append(l.entries[i], e)
}

func (l *cycleList) take(c int64) []*entry {
	i := c % eventWindow
	if l.cycle[i] != c {
		return nil
	}
	l.cycle[i] = -1
	return l.entries[i]
}

// seqHeap is a min-heap of entries ordered by age (issue sequence):
// dispatch prefers the oldest ready instruction.
type seqHeap []*entry

func (h *seqHeap) push(e *entry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].seq <= (*h)[i].seq {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *seqHeap) pop() *entry {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*h)[l].seq < (*h)[s].seq {
			s = l
		}
		if r < n && (*h)[r].seq < (*h)[s].seq {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return e
}

// Simulator runs traces under one RUU configuration. It is reusable;
// Run resets all state.
type Simulator struct {
	cfg   Config
	banks int // dispatch/result/commit domains: N for BusN, 1 for Bus1
	lat   isa.Latencies
	pool  *fu.Pool

	capacity []int // slots per bank
	free     []int

	regProducer [isa.NumRegs]*entry
	regReadyAt  [isa.NumRegs]int64

	// Memory-carried dependences, renamed per address exactly like
	// registers: loads (and stores, for per-address ordering) wait on
	// the latest in-flight store to their address; there is no
	// store-to-load forwarding in the base machine. Indexed by the
	// dense trace.PreparedOp.AddrID, so access is a slice index.
	memProducer []*entry
	memReadyAt  []int64

	slab    []entry  // all entry storage; recycled between instructions
	freeEnt []*entry // free-list stack over slab

	fifo     []*entry // ring buffer of in-flight entries in program order
	fifoHead int
	fifoLen  int

	ready []seqHeap
	retry []*entry

	readyEvents cycleList
	broadcasts  cycleList
	results     *bus.Tracker // FU -> RUU result bus slots
	commitSeen  []bool       // per-bank commit-bus use, reset each cycle
	memBanks    *mem.Banks

	probe probe.Probe
	rec   *events.Recorder
}

// New builds a simulator; it panics on nonsensical configuration.
// NewChecked is the error-returning form.
func New(cfg Config) *Simulator {
	s, err := NewChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewChecked builds a simulator, validating the configuration instead
// of panicking.
func NewChecked(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:  cfg,
		lat:  cfg.latencies(),
		pool: fu.NewPool(cfg.latencies()),
	}
	s.pool.SegmentAll()
	for u, n := range cfg.FUCount {
		if n > 1 {
			s.pool.SetCount(isa.Unit(u), n)
		}
	}
	if cfg.Bus == bus.BusN {
		s.banks = cfg.IssueUnits
	} else {
		s.banks = 1
	}
	s.capacity = make([]int, s.banks)
	for i := 0; i < cfg.Size; i++ {
		s.capacity[i%s.banks]++
	}
	s.free = make([]int, s.banks)
	s.slab = make([]entry, cfg.Size)
	s.freeEnt = make([]*entry, 0, cfg.Size)
	s.fifo = make([]*entry, cfg.Size)
	s.ready = make([]seqHeap, s.banks)
	s.results = bus.NewTracker(cfg.Bus, s.banks)
	s.commitSeen = make([]bool, s.banks)
	s.memBanks = mem.NewBanks(cfg.MemBanks, cfg.MemLatency)
	return s, nil
}

func (s *Simulator) reset(numAddrs int) {
	s.pool.Reset()
	s.memBanks.Reset()
	copy(s.free, s.capacity)
	s.regProducer = [isa.NumRegs]*entry{}
	s.regReadyAt = [isa.NumRegs]int64{}
	if cap(s.memProducer) < numAddrs {
		s.memProducer = make([]*entry, numAddrs)
		s.memReadyAt = make([]int64, numAddrs)
	} else {
		s.memProducer = s.memProducer[:numAddrs]
		s.memReadyAt = s.memReadyAt[:numAddrs]
		clear(s.memProducer)
		clear(s.memReadyAt)
	}
	s.freeEnt = s.freeEnt[:0]
	for i := range s.slab {
		s.freeEnt = append(s.freeEnt, &s.slab[i])
	}
	s.fifoHead, s.fifoLen = 0, 0
	for i := range s.ready {
		s.ready[i] = s.ready[i][:0]
	}
	s.readyEvents = cycleList{}
	s.broadcasts = cycleList{}
	s.results.Reset()
}

// SetProbe attaches a probe (internal/probe) observing subsequent
// runs, or detaches it with nil. This mirrors core.Machine's SetProbe
// — the package cannot import core, which wraps it. A probe never
// changes timing; the nil default costs one branch per event.
func (s *Simulator) SetProbe(p probe.Probe) { s.probe = p }

// SetRecorder attaches an event recorder (internal/events) capturing
// per-instruction lifecycle events during subsequent runs, or
// detaches it with nil. Like SetProbe, it mirrors core.Machine's
// contract: recording never changes timing and the nil default costs
// one branch per event site.
func (s *Simulator) SetRecorder(r *events.Recorder) { s.rec = r }

// Name identifies the simulator configuration in diagnostics.
func (s *Simulator) Name() string {
	return fmt.Sprintf("RUU(%d units, %d entries, %s)", s.cfg.IssueUnits, s.cfg.Size, s.cfg.Bus)
}

// snapshot formats up to max in-flight RUU entries, oldest first, for
// a stall diagnostic.
func (s *Simulator) snapshot(max int) []string {
	var out []string
	for i := 0; i < s.fifoLen; i++ {
		if len(out) == max {
			out = append(out, fmt.Sprintf("... and %d more", s.fifoLen-max))
			break
		}
		e := s.fifo[(s.fifoHead+i)%len(s.fifo)]
		state := "waiting"
		switch {
		case e.done:
			state = "done"
		case e.dispatched:
			state = "executing"
		}
		out = append(out, fmt.Sprintf("#%d %s [%s, deps %d, ready %d]", e.seq, e.op, state, e.depCount, e.readyAt))
	}
	return out
}

// Run simulates t and returns the total cycle count. It panics with a
// *simerr.SimError if the trace cannot be simulated; RunChecked is
// the error-returning, bounded form.
func (s *Simulator) Run(t *trace.Trace) int64 {
	cycles, err := s.RunChecked(t, Limits{})
	if err != nil {
		panic(err)
	}
	return cycles
}

// RunChecked simulates t under the limits and returns the total cycle
// count. The machine steps cycle by cycle, so all three checks apply:
// cycle budget, no-forward-progress watchdog, and wall-clock deadline.
func (s *Simulator) RunChecked(t *trace.Trace, lim Limits) (int64, error) {
	p := t.Prepared()
	if p.Err != nil {
		return 0, &simerr.SimError{
			Kind: simerr.KindBadTrace, Machine: s.Name(), Trace: t.Name,
			Instr: int64(p.ErrIndex), Msg: p.Err.Error(),
		}
	}
	s.reset(p.NumAddrs)
	g := simerr.NewGuard(s.Name(), t.Name, lim.MaxCycles, lim.StallCycles, lim.Deadline)
	if in := faultinject.Active(); in != nil {
		if panicAt, stallAt, errAt, transient, armed := in.SimFault(s.Name(), t.Name); armed {
			g.Inject(simerr.InjectedFault{
				PanicAt: panicAt, StallAt: stallAt, ErrAt: errAt, Transient: transient,
			})
		}
	}
	if s.probe != nil {
		s.probe.Begin(s.Name(), t.Name, s.cfg.IssueUnits, s.cfg.Size)
	}
	if s.rec != nil {
		s.rec.Begin(s.Name(), t.Name, s.cfg.IssueUnits)
	}

	var (
		pos       int   // next trace op to issue
		seq       int64 // issue sequence counter
		issueGate int64 // no issue before this cycle (branch resolution)
		lastEvent int64
	)
	bump := func(c int64) {
		if c > lastEvent {
			lastEvent = c
		}
	}

	for c := int64(0); pos < len(t.Ops) || s.fifoLen > 0; c++ {
		if err := g.Stalled(c, int64(pos), s.snapshot); err != nil {
			return 0, err
		}
		if err := g.Over(max(c, lastEvent), int64(pos)); err != nil {
			return 0, err
		}
		if err := g.Tick(c, int64(pos)); err != nil {
			return 0, err
		}
		if s.probe != nil {
			s.probe.Occupancy(s.fifoLen, 1)
		}
		// 1. Results returning this cycle: mark done, wake waiters.
		for _, e := range s.broadcasts.take(c) {
			e.done = true
			e.doneAt = c
			if s.probe != nil {
				s.probe.Writeback(c, e.op.Unit, int64(s.pool.Latency(e.op.Unit)))
			}
			if s.rec != nil {
				s.rec.RecordWriteback(e.op.Seq, c, e.op.Unit)
			}
			bump(c)
			g.Progress(c)
			if e.flags.Has(trace.FlagHasDst) && s.regProducer[e.op.Dst] == e {
				s.regProducer[e.op.Dst] = nil
				s.regReadyAt[e.op.Dst] = c
			}
			if e.flags.Has(trace.FlagStore) && s.memProducer[e.addrID] == e {
				s.memProducer[e.addrID] = nil
				s.memReadyAt[e.addrID] = c
			}
			for _, w := range e.waiters {
				w.depCount--
				if w.depCount == 0 {
					w.readyAt = c
					if w.issueAt+1 > w.readyAt {
						w.readyAt = w.issueAt + 1
					}
					s.schedule(w)
				}
			}
			e.waiters = e.waiters[:0]
		}

		// 2. Entries whose operands became available at cycle c.
		for _, e := range s.readyEvents.take(c) {
			s.ready[e.bank].push(e)
		}

		// 3. Commit from the head, in program order, one per
		// commit-bus domain per cycle.
		commitBudget := 1
		if s.cfg.Bus == bus.BusN {
			commitBudget = s.banks // one per bank; heads rotate banks
		}
		for i := range s.commitSeen {
			s.commitSeen[i] = false
		}
		for s.fifoLen > 0 && commitBudget > 0 {
			head := s.fifo[s.fifoHead]
			if !head.done || s.commitSeen[head.bank] {
				break
			}
			s.commitSeen[head.bank] = true
			commitBudget--
			if s.rec != nil {
				s.rec.RecordCommit(head.op.Seq, c)
			}
			s.free[head.bank]++
			s.fifo[s.fifoHead] = nil
			s.fifoHead = (s.fifoHead + 1) % len(s.fifo)
			s.fifoLen--
			s.freeEnt = append(s.freeEnt, head) // recycle the slot
			bump(c)
			g.Progress(c)
		}

		// 4. Dispatch ready entries, oldest first, one per dispatch-
		// bus domain per cycle, subject to functional-unit acceptance
		// and a free result slot at completion.
		for b := 0; b < s.banks; b++ {
			if s.dispatchBank(b, c, &lastEvent) {
				g.Progress(c)
			}
		}

		// 5. Issue up to N instructions into the RUU, in program
		// order, stopping at a branch or a full bank. When probed, the
		// cycle's unfilled issue slots are blamed on whatever stopped
		// the loop; slots with no instructions left are the drain,
		// which the probe derives itself.
		issuedNow := int64(0)
		stallReason := probe.ReasonDrain // sentinel: nothing blocked
		if c < issueGate && pos < len(t.Ops) {
			stallReason = probe.ReasonBranch
		}
		if c >= issueGate {
			for issued := 0; issued < s.cfg.IssueUnits && pos < len(t.Ops); issued++ {
				op := &t.Ops[pos]
				po := &p.Ops[pos]
				if po.Flags.Has(trace.FlagBranch) {
					if s.cfg.PerfectBranches {
						// Ablation: the branch consumes this issue slot
						// and nothing more.
						issuedNow++
						if s.probe != nil {
							s.probe.BranchResolve(c)
						}
						if s.rec != nil {
							s.rec.RecordIssue(op.Seq, c)
							s.rec.RecordBranchResolve(op.Seq, c)
						}
						bump(c)
						g.Progress(c)
						pos++
						seq++
						continue
					}
					a0 := int64(0)
					if po.Flags.Has(trace.FlagConditional) {
						if s.regProducer[isa.A0] != nil {
							stallReason = probe.ReasonBranch
							break // A0 still in flight; retry next cycle
						}
						a0 = s.regReadyAt[isa.A0]
					}
					if a0 > c {
						stallReason = probe.ReasonBranch
						break // retry once A0 is readable
					}
					issueGate = c + int64(s.cfg.BranchLatency)
					issuedNow++
					stallReason = probe.ReasonBranch
					if s.probe != nil {
						s.probe.BranchResolve(issueGate)
					}
					if s.rec != nil {
						s.rec.RecordIssue(op.Seq, c)
						s.rec.RecordBranchResolve(op.Seq, issueGate)
					}
					bump(issueGate)
					g.Progress(c)
					pos++
					seq++
					break // nothing issues past an unresolved branch
				}

				bank := int(seq) % s.banks
				if s.free[bank] == 0 {
					stallReason = probe.ReasonBufferFull
					break // RUU (bank) full: in-order issue stalls
				}
				issuedNow++
				s.free[bank]--
				e := s.freeEnt[len(s.freeEnt)-1]
				s.freeEnt = s.freeEnt[:len(s.freeEnt)-1]
				// Field-wise reinitialization (not a struct literal):
				// the literal compiles to a full-size copy on every
				// issued instruction, and this is the hottest store in
				// the simulator.
				e.seq, e.op, e.flags, e.addrID = seq, op, po.Flags, po.AddrID
				e.bank, e.issueAt = bank, c
				if s.rec != nil {
					s.rec.RecordAlloc(op.Seq, c)
					s.rec.RecordIssue(op.Seq, c)
				}
				e.depCount, e.readyAt = 0, 0
				e.waiters = e.waiters[:0] // keep the recycled capacity
				e.dispatched, e.done = false, false
				e.doneAt = math.MaxInt64
				seq++
				pos++
				s.fifo[(s.fifoHead+s.fifoLen)%len(s.fifo)] = e
				s.fifoLen++

				for _, r := range po.Reads() {
					if prod := s.regProducer[r]; prod != nil {
						prod.waiters = append(prod.waiters, e)
						e.depCount++
					} else if s.regReadyAt[r] > e.readyAt {
						e.readyAt = s.regReadyAt[r]
					}
				}
				if po.Flags.Has(trace.FlagMemory) {
					if prod := s.memProducer[po.AddrID]; prod != nil {
						prod.waiters = append(prod.waiters, e)
						e.depCount++
					} else if d := s.memReadyAt[po.AddrID]; d > e.readyAt {
						e.readyAt = d
					}
				}
				if po.Flags.Has(trace.FlagHasDst) {
					s.regProducer[op.Dst] = e
				}
				if po.Flags.Has(trace.FlagStore) {
					s.memProducer[po.AddrID] = e
				}
				if e.depCount == 0 {
					if e.issueAt+1 > e.readyAt {
						e.readyAt = e.issueAt + 1
					}
					s.schedule(e)
				}
				bump(c)
				g.Progress(c)
			}
		}
		if s.probe != nil {
			if issuedNow > 0 {
				s.probe.Issue(c, issuedNow)
			}
			if stallReason != probe.ReasonDrain && pos < len(t.Ops) {
				if lost := int64(s.cfg.IssueUnits) - issuedNow; lost > 0 {
					s.probe.Stall(c, stallReason, lost)
				}
			}
		}
	}
	if s.probe != nil {
		s.probe.End(lastEvent)
	}
	if s.rec != nil {
		s.rec.End(lastEvent)
	}
	return lastEvent, nil
}

// schedule queues e for dispatch at e.readyAt.
func (s *Simulator) schedule(e *entry) {
	s.readyEvents.add(e.readyAt, e)
}

// dispatchBank sends at most one ready entry from bank b to the
// functional units at cycle c and reports whether it dispatched one.
// Entries that fail a structural check (unit busy, result slot taken)
// stay queued.
func (s *Simulator) dispatchBank(b int, c int64, lastEvent *int64) bool {
	h := &s.ready[b]
	s.retry = s.retry[:0]
	dispatched := false
	for len(*h) > 0 && !dispatched {
		e := h.pop()
		unit := e.op.Unit
		if s.pool.EarliestAccept(unit, c) > c {
			s.retry = append(s.retry, e)
			continue
		}
		isMem := e.flags.Has(trace.FlagMemory)
		if isMem && s.memBanks.EarliestAccept(e.op.Addr, c) > c {
			s.retry = append(s.retry, e)
			continue
		}
		done := c + int64(s.pool.Latency(unit))
		needsBus := e.flags.Has(trace.FlagHasDst)
		if needsBus && !s.results.Free(b, done) {
			s.retry = append(s.retry, e)
			continue
		}
		s.pool.Accept(unit, c)
		if isMem {
			s.memBanks.Accept(e.op.Addr, c)
		}
		e.dispatched = true
		if s.rec != nil {
			s.rec.RecordExec(e.op.Seq, c, unit, done-c)
		}
		if needsBus {
			if s.rec != nil {
				s.rec.RecordResultBus(e.op.Seq, done, b)
			}
			s.results.Reserve(b, done)
			s.broadcasts.add(done, e)
		} else {
			// Stores: the memory operation completes without a
			// register result; the entry is committable at completion.
			s.broadcasts.add(done, e)
		}
		if done > *lastEvent {
			*lastEvent = done
		}
		dispatched = true
	}
	for _, e := range s.retry {
		h.push(e)
	}
	return dispatched
}
