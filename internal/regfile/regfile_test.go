package regfile

import (
	"testing"
	"testing/quick"

	"mfup/internal/isa"
)

func TestZeroValueReady(t *testing.T) {
	var s Scoreboard
	for r := 0; r < isa.NumRegs; r++ {
		if s.ReadyAt(isa.Reg(r)) != 0 {
			t.Fatalf("register %d not ready at cycle 0", r)
		}
	}
}

func TestSetAndRead(t *testing.T) {
	var s Scoreboard
	s.SetReady(isa.S(3), 17)
	if got := s.ReadyAt(isa.S(3)); got != 17 {
		t.Errorf("ReadyAt = %d, want 17", got)
	}
	if got := s.ReadyAt(isa.S(4)); got != 0 {
		t.Errorf("unrelated register ReadyAt = %d, want 0", got)
	}
}

func TestEarliestFor(t *testing.T) {
	var s Scoreboard
	s.SetReady(isa.S(1), 10) // source pending (RAW)
	s.SetReady(isa.S(2), 5)  // destination pending (WAW)

	// Both hazards: the later one binds.
	if got := s.EarliestFor(3, isa.S(2), isa.S(1)); got != 10 {
		t.Errorf("RAW+WAW earliest = %d, want 10", got)
	}
	// Only WAW.
	if got := s.EarliestFor(3, isa.S(2), isa.S(4)); got != 5 {
		t.Errorf("WAW earliest = %d, want 5", got)
	}
	// No hazards: request time passes through.
	if got := s.EarliestFor(3, isa.S(5), isa.S(6)); got != 3 {
		t.Errorf("no-hazard earliest = %d, want 3", got)
	}
	// NoReg operands are ignored.
	if got := s.EarliestFor(3, isa.NoReg, isa.NoReg, isa.S(1)); got != 10 {
		t.Errorf("NoReg handling: earliest = %d, want 10", got)
	}
}

func TestEarliestForRequestInPast(t *testing.T) {
	var s Scoreboard
	s.SetReady(isa.A(1), 4)
	// Requests after the hazard clears are unchanged.
	if got := s.EarliestFor(9, isa.NoReg, isa.A(1)); got != 9 {
		t.Errorf("earliest = %d, want 9", got)
	}
}

func TestReset(t *testing.T) {
	var s Scoreboard
	s.SetReady(isa.T(10), 99)
	s.Reset()
	if s.ReadyAt(isa.T(10)) != 0 {
		t.Error("Reset did not clear")
	}
}

// Property: EarliestFor never returns less than the request time and
// never less than any involved register's ready time.
func TestEarliestForLowerBounds(t *testing.T) {
	f := func(tReq uint16, rdy1, rdy2 uint16, r1, r2 uint8) bool {
		var s Scoreboard
		reg1 := isa.Reg(int(r1) % isa.NumRegs)
		reg2 := isa.Reg(int(r2) % isa.NumRegs)
		s.SetReady(reg1, int64(rdy1))
		s.SetReady(reg2, int64(rdy2))
		got := s.EarliestFor(int64(tReq), reg2, reg1)
		return got >= int64(tReq) && got >= s.ReadyAt(reg1) && got >= s.ReadyAt(reg2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
