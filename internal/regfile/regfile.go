// Package regfile provides the register scoreboard used by the
// in-order machine models: for every architectural register it tracks
// the cycle at which the register's value is (or will be) available.
//
// The CRAY-style issue discipline reads operands at issue and
// reserves the destination register until the result returns, so both
// RAW and WAW hazards reduce to the same test: a register involved in
// the instruction must have no outstanding reservation, i.e. its
// ready cycle must not lie in the future.
package regfile

import "mfup/internal/isa"

// Scoreboard records per-register availability times, in cycles.
// The zero value is ready-everywhere at cycle 0.
type Scoreboard struct {
	ready [isa.NumRegs]int64
}

// Reset marks every register available at cycle 0.
func (s *Scoreboard) Reset() {
	s.ready = [isa.NumRegs]int64{}
}

// ReadyAt returns the cycle at which register r becomes available.
func (s *Scoreboard) ReadyAt(r isa.Reg) int64 {
	return s.ready[r]
}

// SetReady records that register r's new value arrives at cycle c
// (reserving r until then).
func (s *Scoreboard) SetReady(r isa.Reg, c int64) {
	s.ready[r] = c
}

// EarliestFor returns the earliest cycle at which an instruction with
// the given source registers and destination can pass the register
// checks: all sources readable (RAW) and the destination free (WAW).
// Any register argument may be isa.NoReg.
func (s *Scoreboard) EarliestFor(t int64, dst isa.Reg, srcs ...isa.Reg) int64 {
	for _, r := range srcs {
		if r.Valid() && s.ready[r] > t {
			t = s.ready[r]
		}
	}
	if dst.Valid() && s.ready[dst] > t {
		t = s.ready[dst]
	}
	return t
}
