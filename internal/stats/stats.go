// Package stats provides the summary statistics of the paper:
// issue rates are combined across benchmark loops with the harmonic
// mean, the standard aggregate for rates (Worlton, "Understanding
// Supercomputer Benchmarks").
package stats

import (
	"fmt"
	"math"
)

// HarmonicMean returns the harmonic mean of xs. It returns 0 for an
// empty slice and NaN if any value is zero or negative (rates must be
// positive).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element of xs and whether xs was
// non-empty; the zero value with ok == false replaces the old
// empty-slice panic.
func Min(xs []float64) (min float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, true
}

// Rate2 formats an issue rate with the paper's two-decimal precision.
func Rate2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Percentile returns the p-th percentile (p in [0, 1]) of the sorted
// ascending sample xs, using the nearest-rank convention: the value at
// rank ceil(p*n), 1-indexed. Nearest-rank is exact for the small
// sample counts load tools see at startup — for n == 1 every
// percentile is the single sample, and for n == 2 the p99 is the
// *larger* sample, not the smaller (the truncating index convention
// int(p*(n-1)) got that wrong). The index is clamped, so no p in
// [0, 1] can reach outside xs. An empty sample returns 0.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return xs[rank-1]
}
