package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicMeanBasics(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HM(nil) = %v, want 0", got)
	}
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Errorf("HM(2,2,2) = %v, want 2", got)
	}
	// Classic example: HM(1, 2) = 4/3.
	if got := HarmonicMean([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("HM(1,2) = %v, want 4/3", got)
	}
	if got := HarmonicMean([]float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("HM with zero = %v, want NaN", got)
	}
}

func TestMeanAndMin(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got, ok := Min([]float64{3, 1, 2}); !ok || got != 1 {
		t.Errorf("Min = %v, %v; want 1, true", got, ok)
	}
}

func TestMinOfEmptyReportsNotOK(t *testing.T) {
	if got, ok := Min(nil); ok || got != 0 {
		t.Errorf("Min(nil) = %v, %v; want 0, false", got, ok)
	}
	if got, ok := Min([]float64{}); ok || got != 0 {
		t.Errorf("Min([]) = %v, %v; want 0, false", got, ok)
	}
}

func TestRate2(t *testing.T) {
	if got := Rate2(0.4449); got != "0.44" {
		t.Errorf("Rate2 = %q, want 0.44", got)
	}
}

// Percentile regression: the small-sample index math. With n == 1
// every percentile is the sample; with n == 2 the p50 is the lower
// sample under nearest-rank (rank ceil(0.5*2) = 1) and the p99 the
// *upper* one (rank ceil(0.99*2) = 2) — the old truncating convention
// int(p*(n-1)) returned the lower sample for both, reporting a p99
// equal to the minimum.
func TestPercentileSmallSamples(t *testing.T) {
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("Percentile(nil, .99) = %v, want 0", got)
	}
	one := []float64{7}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(one, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v, want 7", p, got)
		}
	}
	two := []float64{1, 9}
	if got := Percentile(two, 0.50); got != 1 {
		t.Errorf("p50 of [1 9] = %v, want 1 (nearest rank)", got)
	}
	if got := Percentile(two, 0.99); got != 9 {
		t.Errorf("p99 of [1 9] = %v, want 9, not the minimum", got)
	}
	if got := Percentile(two, 1); got != 9 {
		t.Errorf("p100 of [1 9] = %v, want 9", got)
	}
	if got := Percentile(two, 0); got != 1 {
		t.Errorf("p0 of [1 9] = %v, want 1", got)
	}
}

// Percentile never indexes out of range for any p in [0, 1] and any
// sample count, and always returns an element of the sample.
func TestPercentileInRange(t *testing.T) {
	f := func(raw []uint8, pr uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sortFloats(xs)
		p := float64(pr) / 255
		v := Percentile(xs, p)
		return v >= xs[0] && v <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Properties of the harmonic mean over positive rates: it is bounded
// by the minimum and the arithmetic mean, and is dominated by slow
// loops — which is exactly why the paper uses it for issue rates.
func TestHarmonicMeanProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.05 + float64(r)/64 // positive rates
		}
		hm := HarmonicMean(xs)
		mn, ok := Min(xs)
		const eps = 1e-9
		return ok && hm >= mn-eps && hm <= Mean(xs)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
