package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicMeanBasics(t *testing.T) {
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HM(nil) = %v, want 0", got)
	}
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Errorf("HM(2,2,2) = %v, want 2", got)
	}
	// Classic example: HM(1, 2) = 4/3.
	if got := HarmonicMean([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("HM(1,2) = %v, want 4/3", got)
	}
	if got := HarmonicMean([]float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("HM with zero = %v, want NaN", got)
	}
}

func TestMeanAndMin(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got, ok := Min([]float64{3, 1, 2}); !ok || got != 1 {
		t.Errorf("Min = %v, %v; want 1, true", got, ok)
	}
}

func TestMinOfEmptyReportsNotOK(t *testing.T) {
	if got, ok := Min(nil); ok || got != 0 {
		t.Errorf("Min(nil) = %v, %v; want 0, false", got, ok)
	}
	if got, ok := Min([]float64{}); ok || got != 0 {
		t.Errorf("Min([]) = %v, %v; want 0, false", got, ok)
	}
}

func TestRate2(t *testing.T) {
	if got := Rate2(0.4449); got != "0.44" {
		t.Errorf("Rate2 = %q, want 0.44", got)
	}
}

// Properties of the harmonic mean over positive rates: it is bounded
// by the minimum and the arithmetic mean, and is dominated by slow
// loops — which is exactly why the paper uses it for issue rates.
func TestHarmonicMeanProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.05 + float64(r)/64 // positive rates
		}
		hm := HarmonicMean(xs)
		mn, ok := Min(xs)
		const eps = 1e-9
		return ok && hm >= mn-eps && hm <= Mean(xs)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
