package mem

import "testing"

func TestDisabledModelIsTransparent(t *testing.T) {
	b := NewBanks(0, 11)
	if b.Enabled() {
		t.Fatal("0-bank model reports enabled")
	}
	if got := b.EarliestAccept(5, 3); got != 3 {
		t.Errorf("EarliestAccept = %d, want 3", got)
	}
	b.Accept(5, 3) // must be a no-op
	if got := b.EarliestAccept(5, 4); got != 4 {
		t.Errorf("after no-op Accept: EarliestAccept = %d, want 4", got)
	}
}

func TestBankConflict(t *testing.T) {
	b := NewBanks(4, 11)
	if !b.Enabled() {
		t.Fatal("4-bank model reports disabled")
	}
	b.Accept(8, 0) // bank 0 busy until 11
	if got := b.EarliestAccept(12, 1); got != 11 {
		t.Errorf("same bank (addr 12): EarliestAccept = %d, want 11", got)
	}
	if got := b.EarliestAccept(9, 1); got != 1 {
		t.Errorf("different bank (addr 9): EarliestAccept = %d, want 1", got)
	}
}

func TestBankMapping(t *testing.T) {
	for addr := int64(0); addr < 16; addr++ {
		b2 := NewBanks(4, 5)
		b2.Accept(addr, 0)
		// Only addresses congruent mod 4 conflict.
		for probe := int64(0); probe < 16; probe++ {
			want := int64(0)
			if probe%4 == addr%4 {
				want = 5
			}
			if got := b2.EarliestAccept(probe, 0); got != want {
				t.Fatalf("accept %d then probe %d: got %d, want %d", addr, probe, got, want)
			}
		}
	}
}

func TestNegativeAddresses(t *testing.T) {
	// Defensive: the emulator rejects negative addresses, but the
	// model itself must not index out of range.
	b := NewBanks(4, 5)
	b.Accept(-3, 0)
	if got := b.EarliestAccept(-3, 0); got != 5 {
		t.Errorf("negative address round trip: got %d, want 5", got)
	}
}

func TestReset(t *testing.T) {
	b := NewBanks(2, 7)
	b.Accept(0, 0)
	b.Reset()
	if got := b.EarliestAccept(0, 0); got != 0 {
		t.Errorf("after Reset: EarliestAccept = %d, want 0", got)
	}
}

func TestNegativeBankCountDisables(t *testing.T) {
	b := NewBanks(-5, 11)
	if b.Enabled() {
		t.Error("negative bank count should disable the model")
	}
}
