// Package mem refines the memory-system timing model beyond the
// paper's two points (serial, ideally interleaved) with an
// address-interleaved *banked* memory: B banks, bank = address mod B,
// one new request accepted per cycle machine-wide, and each bank busy
// for the full access time of a request it serves.
//
// The paper's "interleaved memory" is the B -> infinity ideal of this
// model (a new request every cycle, never a conflict), and its
// "serial memory" is B = 1. The banked model is an extension used for
// ablation: it quantifies how many banks the idealization assumes.
// The CRAY-1 itself had 16 banks with a 4-cycle bank busy time; here
// a bank is pessimistically busy for the full access latency, which
// brackets the effect.
package mem

// Banks models bank conflicts in an interleaved memory. The zero
// value (NumBanks 0) disables the model: every request is accepted as
// soon as presented, matching the ideal interleaved memory. Banks
// does not model the 1-request-per-cycle port; the machines already
// impose that through the memory functional unit.
type Banks struct {
	latency int
	busy    []int64 // per-bank next-free cycle
}

// NewBanks builds a model with the given bank count and access
// latency. numBanks 0 returns the disabled (ideal) model; numBanks
// must otherwise be positive.
func NewBanks(numBanks, latency int) *Banks {
	if numBanks < 0 {
		numBanks = 0
	}
	return &Banks{latency: latency, busy: make([]int64, numBanks)}
}

// Enabled reports whether bank conflicts are being modeled.
func (b *Banks) Enabled() bool { return len(b.busy) > 0 }

// Reset marks all banks free.
func (b *Banks) Reset() {
	for i := range b.busy {
		b.busy[i] = 0
	}
}

// EarliestAccept returns the earliest cycle >= t at which the bank
// holding addr can take a request.
func (b *Banks) EarliestAccept(addr, t int64) int64 {
	if len(b.busy) == 0 {
		return t
	}
	if f := b.busy[b.bank(addr)]; f > t {
		return f
	}
	return t
}

// Accept records a request to addr starting at cycle t; the bank is
// busy until t plus the access latency.
func (b *Banks) Accept(addr, t int64) {
	if len(b.busy) == 0 {
		return
	}
	b.busy[b.bank(addr)] = t + int64(b.latency)
}

func (b *Banks) bank(addr int64) int {
	i := int(addr % int64(len(b.busy)))
	if i < 0 {
		i += len(b.busy)
	}
	return i
}
