// Package queuemodel is the analytic cross-check of the simulator: a
// queueing-network estimate of the issue rate a machine definition can
// sustain on a given instruction mix, computed in microseconds instead
// of a simulation run.
//
// The machine is modeled as a network of M/M/c service centers — one
// per functional-unit class, plus the issue stage, the result-bus
// interconnect, the banked memory, and a branch-shadow center for the
// in-order control dependency every machine in the suite has. Each
// center has c servers (a depth-L pipeline with k copies contributes
// c = k*L servers of service time L, so its capacity is k initiations
// per cycle; a non-segmented unit contributes c = k servers of service
// time L, capacity k/L). The sustainable rate is the saturation point
// of the bottleneck center; machines with a finite instruction window
// (the RUU) are further constrained by Little's law, with Erlang-C
// queueing delays filling out the residence time.
//
// The estimate is deliberately coarse — it knows the mix but not the
// dependence structure, so it is an optimistic bound, not a predictor
// of exact rates. Its job in the sweep driver (internal/dse) is
// ordering: ranking thousands of candidate machines well enough that
// the clearly-dominated ones can be pruned before simulation, and
// cross-checking that the simulated Pareto frontier orders the same
// way the analytic model does.
package queuemodel

import (
	"fmt"
	"math"

	"mfup/internal/isa"
	"mfup/internal/machdef"
	"mfup/internal/trace"
)

// Workload is the instruction mix the estimate is computed against:
// the fraction of the dynamic stream bound for each functional-unit
// class.
type Workload struct {
	Instructions int64
	Frac         [isa.NumUnits]float64
}

// WorkloadOf aggregates the mixes of a set of traces into one
// workload, weighting each trace by its dynamic length.
func WorkloadOf(ts []*trace.Trace) Workload {
	var w Workload
	var by [isa.NumUnits]int64
	for _, t := range ts {
		m := t.ComputeMix()
		w.Instructions += m.Total
		for u, n := range m.ByUnit {
			by[u] += n
		}
	}
	if w.Instructions > 0 {
		for u, n := range by {
			w.Frac[u] = float64(n) / float64(w.Instructions)
		}
	}
	return w
}

// Center is one M/M/c service center of the model.
type Center struct {
	Name    string
	Servers int     // c
	Service float64 // S: cycles one visit holds a server
	Demand  float64 // visits per instruction

	// Capacity is the center's saturation throughput in instructions
	// per cycle: Servers / (Demand * Service).
	Capacity float64
}

// Estimate is the model's verdict on one machine definition.
type Estimate struct {
	// Rate is the predicted sustainable issue rate, instructions per
	// cycle: the bottleneck capacity, tightened by the instruction
	// window where the machine has one.
	Rate float64

	// Saturation is the bottleneck capacity before the window
	// constraint; Rate == Saturation on machines without a window.
	Saturation float64

	// Bottleneck names the center that saturates first.
	Bottleneck string

	// Centers is the full network, for diagnostics and reports.
	Centers []Center
}

// segmentedKinds mirrors which machines pipeline their functional
// units (fu.Pool.SegmentAll in the constructors). The serial-memory
// and simple machines run every unit non-segmented; the non-segmented
// machine pipelines only memory.
func segmented(kind string, u isa.Unit) bool {
	switch kind {
	case "simple", "serialmem":
		return false
	case "nonseg":
		return u == isa.Memory
	}
	return true
}

// Predict estimates the issue rate spec sustains on workload w. The
// spec is canonicalized first, so any valid wire-form spec works; an
// invalid spec or an empty workload is an error.
func Predict(spec machdef.Spec, w Workload) (Estimate, error) {
	s, err := machdef.Canonicalize(spec)
	if err != nil {
		return Estimate{}, err
	}
	if w.Instructions <= 0 {
		return Estimate{}, fmt.Errorf("queuemodel: empty workload")
	}
	if s.Kind == "vector" {
		return Estimate{}, fmt.Errorf("queuemodel: the vector machine's datapath is not a scalar queueing network")
	}

	latency := func(u isa.Unit) float64 {
		if v, ok := s.FULat[u.String()]; ok {
			return float64(v)
		}
		switch u {
		case isa.Memory:
			return float64(s.Mem)
		case isa.Branch:
			return float64(s.Br)
		}
		return float64(isa.DefaultLatency(u))
	}
	copies := func(u isa.Unit) int {
		if v, ok := s.FUCount[u.String()]; ok {
			return v
		}
		return 1
	}
	width := s.Width
	if width < 1 {
		width = 1
	}

	var centers []Center
	add := func(name string, servers int, service, demand float64) {
		if demand <= 0 || servers < 1 || service <= 0 {
			return
		}
		centers = append(centers, Center{
			Name: name, Servers: servers, Service: service, Demand: demand,
			Capacity: float64(servers) / (demand * service),
		})
	}

	if s.Kind == "simple" {
		// Execution is exclusive: one instruction in flight, holding the
		// single execute server for its whole latency. One center
		// captures the machine.
		var mean float64
		for u := 0; u < isa.NumUnits; u++ {
			mean += w.Frac[u] * latency(isa.Unit(u))
		}
		add("execute (exclusive)", 1, mean, 1)
	} else {
		// Issue stage: width servers, one cycle each.
		add("issue", width, 1, 1)

		// One center per functional-unit class with traffic. A pipelined
		// unit of depth L and k copies is k*L servers of service L
		// (capacity k per cycle); a non-segmented one is k servers
		// (capacity k/L).
		for u := 0; u < isa.NumUnits; u++ {
			unit := isa.Unit(u)
			f := w.Frac[u]
			if f == 0 {
				continue
			}
			if unit == isa.Memory && s.MemBanks > 0 {
				// Banked memory: each access holds one of MemBanks banks
				// for the full access time.
				add("memory banks", s.MemBanks, latency(unit), f)
				continue
			}
			l, k := latency(unit), copies(unit)
			if segmented(s.Kind, unit) {
				add(unit.String(), k*int(math.Max(l, 1)), l, f)
			} else {
				add(unit.String(), k, l, f)
			}
		}

		// Result buses on the multiple-issue machines: approximately one
		// broadcast per instruction.
		switch s.Bus {
		case "nbus":
			add("result buses", width, 1, 1)
		case "1bus":
			add("result bus", 1, 1, 1)
		case "xbar":
			b := s.Buses
			if b == 0 {
				b = width
			}
			add("crossbar buses", b, 1, 1)
		}
	}

	// Branch shadow: no machine in the suite issues past an unresolved
	// branch, so each branch closes the issue stage for its execution
	// time — a single-server center seeing the branch fraction.
	if !s.PerfectBranches && s.Kind != "simple" {
		add("branch shadow", 1, float64(s.Br), w.Frac[isa.Branch])
	}

	est := Estimate{Centers: centers, Saturation: math.Inf(1)}
	for _, c := range centers {
		if c.Capacity < est.Saturation {
			est.Saturation, est.Bottleneck = c.Capacity, c.Name
		}
	}
	est.Rate = est.Saturation

	// Finite instruction windows: in-flight instructions occupy a
	// buffer entry from issue to retirement, so Little's law bounds
	// the rate by window / residence(rate), residence including the
	// Erlang-C queueing delays at every center. The RUU's window is
	// its entry count; a multiple-issue machine's is its stations,
	// each of which holds one instruction until completion (halved,
	// amortized, under in-order issue, where the head of the line
	// blocks the rest); Tomasulo's is its reservation stations across
	// the unit classes the mix exercises. Solved by bisection below
	// saturation, where the delays are finite.
	var window float64
	switch s.Kind {
	case "ruu":
		window = float64(s.RUU)
	case "ooo":
		window = float64(width)
	case "multi":
		window = (float64(width) + 1) / 2
	case "tomasulo":
		active := 0
		for u := 0; u < isa.NumUnits; u++ {
			if w.Frac[u] > 0 {
				active++
			}
		}
		window = float64(s.Stations * active)
	}
	if window > 0 {
		n := window
		hi := est.Saturation * (1 - 1e-9)
		if residency(centers, hi)*hi > n {
			lo := 0.0
			for i := 0; i < 64; i++ {
				mid := (lo + hi) / 2
				if residency(centers, mid)*mid > n {
					hi = mid
				} else {
					lo = mid
				}
			}
			est.Rate = lo
		}
	}
	return est, nil
}

// residency is the expected cycles one instruction spends in the
// machine at arrival rate lam: for each center it visits, the service
// time plus the M/M/c queueing delay.
func residency(centers []Center, lam float64) float64 {
	var r float64
	for _, c := range centers {
		a := lam * c.Demand * c.Service // offered load, erlangs
		if a >= float64(c.Servers) {
			return math.Inf(1)
		}
		wq := erlangC(c.Servers, a) * c.Service / (float64(c.Servers) - a)
		r += c.Demand * (c.Service + wq)
	}
	return r
}

// erlangC is the steady-state probability an arrival waits in an
// M/M/c queue with offered load a < c, via the numerically stable
// Erlang-B recursion.
func erlangC(c int, a float64) float64 {
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}
