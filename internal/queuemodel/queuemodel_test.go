package queuemodel

import (
	"math"
	"testing"

	"mfup/internal/loops"
	"mfup/internal/machdef"
	"mfup/internal/trace"
)

// workload builds the scalar-class mix the tests share.
func workload(t *testing.T) Workload {
	t.Helper()
	var ts []*trace.Trace
	for _, k := range loops.All() {
		if k.Class == loops.Scalar {
			ts = append(ts, k.SharedTrace())
		}
	}
	w := WorkloadOf(ts)
	if w.Instructions == 0 {
		t.Fatal("empty scalar workload")
	}
	return w
}

func predict(t *testing.T, s machdef.Spec, w Workload) Estimate {
	t.Helper()
	e, err := Predict(s, w)
	if err != nil {
		t.Fatalf("Predict(%+v): %v", s, err)
	}
	if !(e.Rate > 0) || math.IsInf(e.Rate, 0) {
		t.Fatalf("Predict(%+v) = %v, want finite positive rate", s, e.Rate)
	}
	return e
}

// More issue width must never predict a slower machine.
func TestMonotoneInWidth(t *testing.T) {
	w := workload(t)
	prev := 0.0
	for width := 1; width <= 8; width++ {
		e := predict(t, machdef.Spec{Kind: "ooo", Width: width, Bus: "nbus"}, w)
		if e.Rate < prev {
			t.Errorf("width %d: rate %v < width %d's %v", width, e.Rate, width-1, prev)
		}
		prev = e.Rate
	}
}

// A single shared result bus cannot beat one bus per station.
func TestOneBusNoFasterThanNBus(t *testing.T) {
	w := workload(t)
	nbus := predict(t, machdef.Spec{Kind: "ooo", Width: 4, Bus: "nbus"}, w)
	onebus := predict(t, machdef.Spec{Kind: "ooo", Width: 4, Bus: "1bus"}, w)
	if onebus.Rate > nbus.Rate {
		t.Errorf("1bus rate %v > nbus rate %v", onebus.Rate, nbus.Rate)
	}
	if onebus.Rate >= 1.000001 {
		t.Errorf("1bus rate %v: one result per cycle is the hard ceiling", onebus.Rate)
	}
}

// A starved crossbar is no faster than a full one.
func TestStarvedCrossbar(t *testing.T) {
	w := workload(t)
	full := predict(t, machdef.Spec{Kind: "ooo", Width: 8, Bus: "xbar"}, w)
	starved := predict(t, machdef.Spec{Kind: "ooo", Width: 8, Bus: "xbar", Buses: 1}, w)
	if starved.Rate > full.Rate {
		t.Errorf("1-bus crossbar rate %v > full crossbar %v", starved.Rate, full.Rate)
	}
}

// Slower memory or branches must never predict a faster machine.
func TestMonotoneInLatencies(t *testing.T) {
	w := workload(t)
	for _, kind := range []string{"serialmem", "cray", "ruu"} {
		fast := predict(t, machdef.Spec{Kind: kind, Mem: 5, Br: 2}, w)
		slow := predict(t, machdef.Spec{Kind: kind, Mem: 11, Br: 5}, w)
		if slow.Rate > fast.Rate {
			t.Errorf("%s: M11BR5 rate %v > M5BR2 rate %v", kind, slow.Rate, fast.Rate)
		}
	}
}

// A larger instruction window can only help.
func TestMonotoneInRUUSize(t *testing.T) {
	w := workload(t)
	prev := 0.0
	for _, size := range []int{4, 10, 20, 50, 100} {
		e := predict(t, machdef.Spec{Kind: "ruu", Width: 4, RUU: size}, w)
		if e.Rate < prev {
			t.Errorf("RUU %d: rate %v below smaller window's %v", size, e.Rate, prev)
		}
		prev = e.Rate
	}
	// A tiny window must actually bind: rate well below saturation.
	tiny := predict(t, machdef.Spec{Kind: "ruu", Width: 4, RUU: 4}, w)
	if tiny.Rate >= tiny.Saturation {
		t.Errorf("RUU 4: rate %v did not drop below saturation %v", tiny.Rate, tiny.Saturation)
	}
}

// Replicating a loaded unit class can only help, and a second copy of
// an idle one must change nothing.
func TestMonotoneInReplication(t *testing.T) {
	w := workload(t)
	base := predict(t, machdef.Spec{Kind: "nonseg"}, w)
	repl := predict(t, machdef.Spec{Kind: "nonseg", FUCount: map[string]int{"FloatMul": 2}}, w)
	if repl.Rate < base.Rate {
		t.Errorf("replicated FloatMul rate %v < base %v", repl.Rate, base.Rate)
	}
}

// Perfect branches remove the branch shadow; the estimate must not
// get worse.
func TestPerfectBranchesHelp(t *testing.T) {
	w := workload(t)
	real := predict(t, machdef.Spec{Kind: "ooo", Width: 8}, w)
	perfect := predict(t, machdef.Spec{Kind: "ooo", Width: 8, PerfectBranches: true}, w)
	if perfect.Rate < real.Rate {
		t.Errorf("perfect-branch rate %v < real-branch rate %v", perfect.Rate, real.Rate)
	}
}

// The single-issue in-order machines order the way the paper's Table 1
// does: simple <= serialmem <= nonseg <= cray.
func TestOrganizationOrdering(t *testing.T) {
	w := workload(t)
	prev, prevKind := 0.0, ""
	for _, kind := range []string{"simple", "serialmem", "nonseg", "cray"} {
		e := predict(t, machdef.Spec{Kind: kind}, w)
		if e.Rate < prev {
			t.Errorf("%s rate %v < %s rate %v", kind, e.Rate, prevKind, prev)
		}
		prev, prevKind = e.Rate, kind
	}
	if prev > 1 {
		t.Errorf("single-issue rate %v exceeds one instruction per cycle", prev)
	}
}

func TestRejections(t *testing.T) {
	w := workload(t)
	if _, err := Predict(machdef.Spec{Kind: "vector"}, w); err == nil {
		t.Error("vector machine accepted")
	}
	if _, err := Predict(machdef.Spec{Kind: "warp9"}, w); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Predict(machdef.Spec{Kind: "cray"}, Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
}
