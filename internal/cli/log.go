package cli

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// The tools log through slog with a handler that renders exactly what
// their ad-hoc fmt.Fprintln(os.Stderr, "tool:", err) calls used to —
// "tool: message" plus any structured attributes as trailing
// key=value pairs — so adopting structured logging changed no byte of
// the default output. The default level is Warn; -v (see NewLogger)
// lowers it to Debug, and the MFU_LOG environment variable
// (debug | info | warn | error) overrides both.

// toolHandler renders "tool: message key=value ..." lines, one write
// per record, with no timestamps or level tags.
type toolHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	tool  string
	level slog.Level
	attrs []slog.Attr
}

func (h *toolHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *toolHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.tool)
	b.WriteString(": ")
	b.WriteString(r.Message)
	write := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		write(a)
	}
	r.Attrs(write)
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *toolHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	c := *h
	c.attrs = append(h.attrs[:len(h.attrs):len(h.attrs)], attrs...)
	return &c
}

// WithGroup is accepted but flattening: the tools' records are shallow
// and a group prefix would break the byte-identical error format.
func (h *toolHandler) WithGroup(string) slog.Handler { return h }

// logLevel resolves the effective level: Warn by default, Debug under
// -v, with MFU_LOG (debug | info | warn | error) overriding both.
// An unrecognized MFU_LOG value is ignored rather than fatal — the
// logger must come up before any error can be reported through it.
func logLevel(verbose bool) slog.Level {
	level := slog.LevelWarn
	if verbose {
		level = slog.LevelDebug
	}
	switch strings.ToLower(strings.TrimSpace(os.Getenv("MFU_LOG"))) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	}
	return level
}

// NewLogger builds the shared tool logger writing "tool: message"
// lines to standard error. verbose is the tool's -v flag.
func NewLogger(tool string, verbose bool) *slog.Logger {
	return NewLoggerTo(os.Stderr, tool, verbose)
}

// NewLoggerTo is NewLogger with an explicit sink, for tests.
func NewLoggerTo(w io.Writer, tool string, verbose bool) *slog.Logger {
	return slog.New(&toolHandler{
		mu:    new(sync.Mutex),
		w:     w,
		tool:  tool,
		level: logLevel(verbose),
	})
}
