// Package cli holds the small argument-parsing helpers shared by the
// command-line tools.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"mfup/internal/bus"
	"mfup/internal/loops"
)

// SelectLoops resolves a -loops flag value: "all", "scalar", "vector"
// (the vectorizable class), or a comma-separated list of kernel
// numbers. An explicit list keeps its order but drops repeats — a
// duplicated kernel would double-count that loop in any harmonic mean
// computed over the selection — and rejects empty specs and empty
// segments ("1,,2") outright.
func SelectLoops(spec string) ([]*loops.Kernel, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "":
		return nil, fmt.Errorf(`empty loop spec (want "all", "scalar", "vector", or kernel numbers like "1,5,13")`)
	case "all":
		return loops.All(), nil
	case "scalar":
		return loops.ByClass(loops.Scalar), nil
	case "vector", "vectorizable":
		return loops.ByClass(loops.Vectorizable), nil
	}
	var ks []*loops.Kernel
	seen := make(map[int]bool)
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("empty segment in loop spec %q (want comma-separated kernel numbers like \"1,5,13\")", spec)
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad loop spec %q", f)
		}
		k, err := loops.Get(n)
		if err != nil {
			return nil, err
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		ks = append(ks, k)
	}
	return ks, nil
}

// ParseBusKind resolves a -bus flag value.
func ParseBusKind(s string) (bus.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nbus", "n-bus":
		return bus.BusN, nil
	case "1bus", "1-bus":
		return bus.Bus1, nil
	case "xbar", "x-bar":
		return bus.XBar, nil
	}
	return 0, fmt.Errorf("unknown bus kind %q (want nbus, 1bus, or xbar)", s)
}
