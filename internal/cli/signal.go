package cli

import (
	"context"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
)

// Interrupt is the one graceful-cancel policy of the suite, shared by
// every binary (it grew up bespoke inside mfutables):
//
//   - the first SIGINT or SIGTERM cancels the returned context — the
//     tool finishes or checkpoints in-flight work, flushes journals,
//     and exits nonzero — and logs msg with the signal name;
//   - a second signal gets the default kill behavior (the handler
//     unregisters itself after the first), so a wedged drain can
//     always be cut short;
//   - Stop releases the handler and its goroutine; call it when the
//     work the signal would cancel is over (a late ^C should kill a
//     tool that is merely rendering output, not be swallowed).
type Interrupt struct {
	ctx    context.Context
	cancel context.CancelFunc
	fired  atomic.Bool
	sigc   chan os.Signal
	stop   sync.Once
}

// NotifyInterrupt installs the shared handler. log and msg shape the
// first-signal diagnostic; a nil log or empty msg logs nothing.
func NotifyInterrupt(parent context.Context, log *slog.Logger, msg string) *Interrupt {
	ctx, cancel := context.WithCancel(parent)
	in := &Interrupt{ctx: ctx, cancel: cancel, sigc: make(chan os.Signal, 1)}
	signal.Notify(in.sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-in.sigc
		if !ok {
			return
		}
		in.fired.Store(true)
		if log != nil && msg != "" {
			log.Warn(msg, "signal", s.String())
		}
		signal.Stop(in.sigc) // re-arm default kill for a second signal
		cancel()
	}()
	return in
}

// Context is cancelled by the first signal (or by Stop).
func (in *Interrupt) Context() context.Context { return in.ctx }

// Interrupted reports whether a signal arrived.
func (in *Interrupt) Interrupted() bool { return in.fired.Load() }

// Stop unregisters the handler, releases its goroutine, and cancels
// the context. Safe to call more than once and from defers.
func (in *Interrupt) Stop() {
	in.stop.Do(func() {
		signal.Stop(in.sigc)
		close(in.sigc)
		in.cancel()
	})
}
