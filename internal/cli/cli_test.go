package cli

import (
	"testing"

	"mfup/internal/bus"
)

func TestSelectLoops(t *testing.T) {
	cases := []struct {
		spec string
		want int
		ok   bool
	}{
		{"all", 14, true},
		{"scalar", 5, true},
		{"vector", 9, true},
		{"vectorizable", 9, true},
		{"Vector", 9, true},
		{"1,5,13", 3, true},
		{" 2 , 3 ", 2, true},
		{"0", 0, false},
		{"15", 0, false},
		{"banana", 0, false},
		{"1,,2", 0, false},
	}
	for _, c := range cases {
		ks, err := SelectLoops(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("SelectLoops(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && len(ks) != c.want {
			t.Errorf("SelectLoops(%q) = %d kernels, want %d", c.spec, len(ks), c.want)
		}
	}
}

func TestSelectLoopsOrder(t *testing.T) {
	ks, err := SelectLoops("13,1,5")
	if err != nil {
		t.Fatal(err)
	}
	if ks[0].Number != 13 || ks[1].Number != 1 || ks[2].Number != 5 {
		t.Error("explicit list order not preserved")
	}
}

func TestParseBusKind(t *testing.T) {
	for spec, want := range map[string]bus.Kind{
		"nbus": bus.BusN, "N-Bus": bus.BusN,
		"1bus": bus.Bus1, "1-bus": bus.Bus1,
		"xbar": bus.XBar, "X-BAR": bus.XBar,
	} {
		got, err := ParseBusKind(spec)
		if err != nil || got != want {
			t.Errorf("ParseBusKind(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseBusKind("omnibus"); err == nil {
		t.Error("unknown bus kind accepted")
	}
}
