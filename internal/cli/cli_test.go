package cli

import (
	"strings"
	"testing"

	"mfup/internal/bus"
)

func TestSelectLoops(t *testing.T) {
	cases := []struct {
		spec string
		want int
		ok   bool
	}{
		{"all", 14, true},
		{"scalar", 5, true},
		{"vector", 9, true},
		{"vectorizable", 9, true},
		{"Vector", 9, true},
		{"1,5,13", 3, true},
		{" 2 , 3 ", 2, true},
		{"1,1,2", 2, true}, // duplicates collapse: no double-counting
		{"5,3,5,3,5", 2, true},
		{"0", 0, false},
		{"15", 0, false},
		{"banana", 0, false},
		{"1,,2", 0, false},
		{"", 0, false},
		{"   ", 0, false},
		{",", 0, false},
	}
	for _, c := range cases {
		ks, err := SelectLoops(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("SelectLoops(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && len(ks) != c.want {
			t.Errorf("SelectLoops(%q) = %d kernels, want %d", c.spec, len(ks), c.want)
		}
	}
}

func TestSelectLoopsOrder(t *testing.T) {
	ks, err := SelectLoops("13,1,5")
	if err != nil {
		t.Fatal(err)
	}
	if ks[0].Number != 13 || ks[1].Number != 1 || ks[2].Number != 5 {
		t.Error("explicit list order not preserved")
	}
	// Dedup keeps first-occurrence order.
	ks, err = SelectLoops("13,1,13,5,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || ks[0].Number != 13 || ks[1].Number != 1 || ks[2].Number != 5 {
		t.Errorf("deduped list = %v, want kernels 13, 1, 5", ks)
	}
}

func TestSelectLoopsErrorMessages(t *testing.T) {
	for spec, want := range map[string]string{
		"":     "empty loop spec",
		"  ":   "empty loop spec",
		"1,,2": "empty segment",
		"3,":   "empty segment",
	} {
		_, err := SelectLoops(spec)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("SelectLoops(%q) error = %v, want mention of %q", spec, err, want)
		}
	}
	// A bad number inside an otherwise-valid list names the segment,
	// not some later parse state.
	if _, err := SelectLoops("1,zap,2"); err == nil || !strings.Contains(err.Error(), `"zap"`) {
		t.Errorf("SelectLoops(1,zap,2) error = %v, want the bad segment named", err)
	}
}

func TestParseBusKind(t *testing.T) {
	for spec, want := range map[string]bus.Kind{
		"nbus": bus.BusN, "N-Bus": bus.BusN,
		"1bus": bus.Bus1, "1-bus": bus.Bus1,
		"xbar": bus.XBar, "X-BAR": bus.XBar,
	} {
		got, err := ParseBusKind(spec)
		if err != nil || got != want {
			t.Errorf("ParseBusKind(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseBusKind("omnibus"); err == nil {
		t.Error("unknown bus kind accepted")
	}
}
