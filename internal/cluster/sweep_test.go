package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mfup/internal/dse"
	"mfup/internal/serve"
)

// A real sweep, small enough to resolve in well under a second:
// 8 distinct machines over the scalar loops.
const sweepDoc = `{
	"base": {"kind": "ooo", "mem": 11, "br": 5},
	"axes": {
		"width": [1, 2, 4, 8],
		"bus": ["nbus", "1bus"]
	}
}`

// newWorker starts a real serve.Server behind an httptest listener —
// the routed sweep tests exercise the genuine worker admission path,
// not stubs.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return ts
}

// localReport runs the same sweep in process — the byte-identity
// reference every routed run is compared against.
func localReport(t *testing.T) []byte {
	t.Helper()
	sw, err := dse.Parse([]byte(sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dse.Run(context.Background(), sw, dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The response envelope embeds the report as a json.RawMessage,
	// which compacts it — on the single-process daemon exactly as on
	// the router — so the reference compares compacted too.
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func submitSweep(t *testing.T, rt *Router, doc string) (status int, env jobResponse, hdr http.Header) {
	t.Helper()
	w := post(t, rt.Handler(), "/v1/sweeps?wait=1", doc)
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("sweep response %d: %v: %s", w.Code, err, w.Body)
	}
	return w.Code, env, w.Result().Header
}

func TestRoutedSweepMatchesLocalRunByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("routed sweep runs real simulations")
	}
	want := localReport(t)
	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)
	rt, err := New(Config{
		Peers:         []string{w1.URL, w2.URL, w3.URL},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	status, env, _ := submitSweep(t, rt, sweepDoc)
	if status != http.StatusOK || env.Status != "done" {
		t.Fatalf("routed sweep: %d %+v", status, env)
	}
	if string(env.Result) != string(want) {
		t.Errorf("routed report diverged from the local run:\nrouted: %.200s\nlocal:  %.200s", env.Result, want)
	}
	st := rt.Snapshot()
	if st.SweepsRouted != 1 || st.PointsDone != 8 {
		t.Errorf("sweeps_routed=%d points_done=%d, want 1/8", st.SweepsRouted, st.PointsDone)
	}

	// A repeat is a router-registry hit: same bytes, cached marker,
	// no further points dispatched.
	status, env2, _ := submitSweep(t, rt, sweepDoc)
	if status != http.StatusOK || env2.Status != "done" || !env2.Cached {
		t.Fatalf("repeated sweep: %d %+v", status, env2)
	}
	if string(env2.Result) != string(want) {
		t.Error("repeated sweep served different bytes")
	}
	if st := rt.Snapshot(); st.PointsDone != 8 {
		t.Errorf("repeat re-dispatched points: points_done=%d", st.PointsDone)
	}

	// GET serves the report too.
	req := httptest.NewRequest(http.MethodGet, "/v1/sweeps/"+env.ID, nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var env3 jobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env3); err != nil || env3.Status != "done" {
		t.Fatalf("GET sweep: %d %v %s", rec.Code, err, rec.Body)
	}
	if string(env3.Result) != string(want) {
		t.Error("GET served different bytes")
	}
}

// The chaos headline, in process: one of three workers is dead from
// the start, the routed sweep still completes, its report is
// byte-identical to an unfaulted local run, and the dead worker's
// points were provably reassigned to survivors.
func TestRoutedSweepReassignsDeadPeersPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("routed sweep runs real simulations")
	}
	want := localReport(t)
	workers := []*httptest.Server{newWorker(t), newWorker(t), newWorker(t)}
	urls := []string{workers[0].URL, workers[1].URL, workers[2].URL}

	// Pick the victim deterministically: a worker that owns at least
	// one of the sweep's point keys, so reassignment must happen.
	sw, err := dse.Parse([]byte(sweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := dse.PlanSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for _, i := range pl.Need {
		owned[Owner(pl.Report.Points[i].Key, urls)]++
	}
	victim := -1
	for i, u := range urls {
		if owned[u] > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker owns any point — degenerate ranking")
	}
	workers[victim].Close() // dead before the sweep starts: every dispatch to it is refused

	rt, err := New(Config{
		Peers:         urls,
		ProbeInterval: time.Hour, // membership stays optimistic; failover carries the load
		HedgeAfter:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	status, env, _ := submitSweep(t, rt, sweepDoc)
	if status != http.StatusOK || env.Status != "done" {
		t.Fatalf("routed sweep with a dead peer: %d %+v", status, env)
	}
	if string(env.Result) != string(want) {
		t.Errorf("report with a dead peer diverged from the unfaulted local run:\nrouted: %.200s\nlocal:  %.200s", env.Result, want)
	}
	st := rt.Snapshot()
	if st.PointsDone != 8 {
		t.Errorf("points_done = %d, want 8", st.PointsDone)
	}
	if st.PointsReassigned < int64(owned[urls[victim]]) {
		t.Errorf("points_reassigned = %d, want >= %d (the victim's share)", st.PointsReassigned, owned[urls[victim]])
	}
}
