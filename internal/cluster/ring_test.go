package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRankDeterministicAndOrderIndependent(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dse-point/v1:loops=scalar:scale=0:machdef=%03d", i)
		r1 := Rank(key, peers)
		r2 := Rank(key, shuffled)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("key %q: rank depends on listing order: %v vs %v", key, r1, r2)
		}
		if len(r1) != 3 {
			t.Fatalf("rank dropped peers: %v", r1)
		}
	}
}

// The rendezvous property the failover design leans on: removing one
// peer moves ONLY the keys it owned (each to its own second choice);
// every other key keeps its owner.
func TestRankMinimalRemapping(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	dead := "http://c:1"
	var survivors []string
	for _, p := range peers {
		if p != dead {
			survivors = append(survivors, p)
		}
	}
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		before := Rank(key, peers)
		after := Owner(key, survivors)
		if before[0] == dead {
			moved++
			if after != before[1] {
				t.Fatalf("key %q: owner died but key went to %s, not its second choice %s", key, after, before[1])
			}
		} else {
			kept++
			if after != before[0] {
				t.Fatalf("key %q: owner %s alive but key moved to %s", key, before[0], after)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved %d kept %d of 200", moved, kept)
	}
}

// Sanity: the hash spreads keys across the fleet rather than piling
// them on one peer.
func TestRankSpreadsLoad(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[Owner(fmt.Sprintf("key-%04d", i), peers)]++
	}
	for _, p := range peers {
		if counts[p] < 50 {
			t.Errorf("peer %s owns only %d of 300 keys (want a reasonable share)", p, counts[p])
		}
	}
}

func TestNormalizePeer(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8081":          "http://127.0.0.1:8081",
		"http://127.0.0.1:8081/":  "http://127.0.0.1:8081",
		" https://w.example.com ": "https://w.example.com",
		"":                        "",
		"   ":                     "",
	}
	for in, want := range cases {
		if got := NormalizePeer(in); got != want {
			t.Errorf("NormalizePeer(%q) = %q, want %q", in, got, want)
		}
	}
}
