// Package cluster is the mfud fleet coordinator: a stateless router
// that shards the daemon's job classes across worker processes by
// content key, with health-checked membership, per-peer circuit
// breakers, hedged retries, and crash-consistent sweep reassignment.
//
// Sharding is rendezvous (highest-random-weight) hashing: every
// (peer, key) pair is scored by a hash, and the peers serve a key in
// descending score order. The property that matters is minimal
// remapping — when a peer dies, only the keys it owned move (each to
// its own second choice), and every other key keeps its owner, so a
// fleet-wide failover does not stampede the survivors' caches.
//
// Everything the router dispatches is content-addressed and
// byte-deterministic: two workers given the same key produce the
// same bytes. That is the idempotency argument the failure handling
// leans on — a hedged duplicate, a replayed lost response, or a
// reassigned sweep point can only ever re-derive the identical
// result, never a conflicting one.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// weight scores one (peer, key) pair. SHA-256 rather than a fast
// hash: scoring happens once per dispatch, and the suite's content
// keys are SHA-256 built already — uniformity is worth more here
// than nanoseconds.
func weight(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Rank orders peers for key by descending rendezvous weight: the
// first entry is the key's owner, the rest its failover sequence.
// The order is a pure function of the (key, peer-set) pair — it does
// not depend on the order peers are listed in, so every router over
// the same fleet ranks identically. Ties (possible only between
// duplicate peer entries) break lexically.
func Rank(key string, peers []string) []string {
	ranked := append([]string(nil), peers...)
	ws := make(map[string]uint64, len(peers))
	for _, p := range ranked {
		ws[p] = weight(p, key)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		wi, wj := ws[ranked[i]], ws[ranked[j]]
		if wi != wj {
			return wi > wj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the key's first-choice peer, or "" with no peers.
func Owner(key string, peers []string) string {
	if len(peers) == 0 {
		return ""
	}
	return Rank(key, peers)[0]
}
