package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mfup/internal/faultinject"
	"mfup/internal/serve"
)

const jobDoc = `{"machine":{"kind":"cray"},"workload":{"loops":"1"}}`

// stubPeer is a scriptable worker: its behavior is swappable at any
// point in a test, and it counts the requests it sees.
type stubPeer struct {
	ts   *httptest.Server
	hits atomic.Int64

	mu sync.Mutex
	fn http.HandlerFunc
}

func newStubPeer(t *testing.T) *stubPeer {
	t.Helper()
	p := &stubPeer{}
	p.fn = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":"k","status":"done","result":{"from":%q}}`, p.url())
	}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			io.WriteString(w, "ready\n")
			return
		}
		p.hits.Add(1)
		p.mu.Lock()
		fn := p.fn
		p.mu.Unlock()
		fn(w, r)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func (p *stubPeer) url() string { return p.ts.URL }

func (p *stubPeer) set(fn http.HandlerFunc) {
	p.mu.Lock()
	p.fn = fn
	p.mu.Unlock()
}

func (p *stubPeer) shed(status, retryAfter int) {
	p.set(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"shedding","retry_after":%d}`, retryAfter)
	})
}

func (p *stubPeer) fail500() {
	p.set(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
}

// newTestRouter builds a router over the stubs with probing
// effectively off (tests drive membership explicitly) and a short
// hedge trigger.
func newTestRouter(t *testing.T, cfg Config, peers ...*stubPeer) *Router {
	t.Helper()
	for _, p := range peers {
		cfg.Peers = append(cfg.Peers, p.url())
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// post submits a body and returns the full response.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// rankStubs orders the stubs as the router would rank them for key.
func rankStubs(key string, peers ...*stubPeer) []*stubPeer {
	var urls []string
	byURL := map[string]*stubPeer{}
	for _, p := range peers {
		urls = append(urls, p.url())
		byURL[p.url()] = p
	}
	var out []*stubPeer
	for _, u := range Rank(key, urls) {
		out = append(out, byURL[u])
	}
	return out
}

// routerJobKey computes the content key the router derives for
// jobDoc — tests use it to know which stub is the owner. It goes
// through the same serve.Canonicalize/serve.Key pair the router
// uses, so test and router agree by construction.
func routerJobKey(t *testing.T, _ *Router) string {
	t.Helper()
	var spec serve.JobSpec
	if err := json.Unmarshal([]byte(jobDoc), &spec); err != nil {
		t.Fatal(err)
	}
	c, err := serve.Canonicalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	return serve.Key(c)
}

func TestForwardRelaysWorkerBytesVerbatim(t *testing.T) {
	a := newStubPeer(t)
	want := `{"id":"k","status":"done","result":{"cycles":42}}` + "\n"
	a.set(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" || r.URL.RawQuery != "wait=1" {
			t.Errorf("worker saw %s?%s", r.URL.Path, r.URL.RawQuery)
		}
		b, _ := io.ReadAll(r.Body)
		if string(b) != jobDoc {
			t.Errorf("body not forwarded verbatim: %s", b)
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, want)
	})
	rt := newTestRouter(t, Config{}, a)
	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Body.String(); got != want {
		t.Errorf("response not verbatim:\ngot  %q\nwant %q", got, want)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q not relayed", ct)
	}
	if st := rt.Snapshot(); st.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", st.Forwarded)
	}
}

func TestBadSpecRefusedAtRouter(t *testing.T) {
	a := newStubPeer(t)
	rt := newTestRouter(t, Config{}, a)
	w := post(t, rt.Handler(), "/v1/jobs", `{"machine":{"kind":"no-such-kind"}}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if a.hits.Load() != 0 {
		t.Errorf("defective spec was dispatched %d times", a.hits.Load())
	}
	if st := rt.Snapshot(); st.BadSpec != 1 || st.Forwarded != 0 {
		t.Errorf("stats %+v, want bad_spec=1 forwarded=0", st)
	}
}

func TestFailoverOnPeerFailure(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	rt := newTestRouter(t, Config{}, a, b)
	ranked := rankStubs(routerJobKey(t, rt), a, b)
	ranked[0].fail500()

	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte(ranked[1].url())) {
		t.Errorf("answer did not come from the failover peer: %s", w.Body)
	}
	st := rt.Snapshot()
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
	for _, ps := range st.Peers {
		if ps.URL == ranked[0].url() && ps.Failures != 1 {
			t.Errorf("failing peer recorded %d failures, want 1", ps.Failures)
		}
	}
}

func TestFailoverOnDeadPeer(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	rt := newTestRouter(t, Config{}, a, b)
	ranked := rankStubs(routerJobKey(t, rt), a, b)
	ranked[0].ts.Close() // connect refused: the crash case

	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte(ranked[1].url())) {
		t.Errorf("answer did not come from the survivor: %s", w.Body)
	}
}

func TestHedgeWinsAgainstSlowPeer(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	rt := newTestRouter(t, Config{HedgeAfter: 30 * time.Millisecond}, a, b)
	ranked := rankStubs(routerJobKey(t, rt), a, b)
	slow, fast := ranked[0], ranked[1]
	slow.set(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		fmt.Fprintf(w, `{"id":"k","status":"done","result":{"from":%q}}`, slow.url())
	})

	start := time.Now()
	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte(fast.url())) {
		t.Errorf("answer did not come from the hedge: %s", w.Body)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("hedge did not cut the tail: %v", elapsed)
	}
	st := rt.Snapshot()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("hedges=%d hedge_wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

func TestAllPeersShed429AggregatesMinimumRetryAfter(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	a.shed(http.StatusTooManyRequests, 7)
	b.shed(http.StatusTooManyRequests, 3)
	rt := newTestRouter(t, Config{}, a, b)

	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want the fleet minimum 3", got)
	}
	var er struct {
		RetryAfter int `json:"retry_after"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.RetryAfter != 3 {
		t.Errorf("body retry_after = %d (%v), want 3", er.RetryAfter, err)
	}
	if st := rt.Snapshot(); st.ShedAllPeers != 1 {
		t.Errorf("shed_all_peers = %d, want 1", st.ShedAllPeers)
	}
}

func TestAllPeersShedMixed503And429Is503NeverZero(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	a.shed(http.StatusServiceUnavailable, 0) // no Retry-After header at all
	b.shed(http.StatusTooManyRequests, 0)
	rt := newTestRouter(t, Config{}, a, b)

	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After %q, want the 1s floor (never zero, never absent)", got)
	}
}

// The satellite-2 arithmetic, pinned: the forwarded Retry-After is
// the fleet minimum clamped into [1s, max].
func TestClampRetryAfter(t *testing.T) {
	cases := []struct {
		min, max, want time.Duration
	}{
		{0, 60 * time.Second, time.Second},                 // zero floors to 1s
		{-5 * time.Second, 60 * time.Second, time.Second},  // negative floors to 1s
		{500 * time.Millisecond, time.Minute, time.Second}, // sub-second floors to 1s
		{time.Second, time.Minute, time.Second},            // floor passes through
		{5 * time.Second, time.Minute, 5 * time.Second},    // in range passes through
		{2 * time.Minute, time.Minute, time.Minute},        // cap
		{5 * time.Second, 0, time.Second},                  // degenerate cap floors to 1s
	}
	for _, c := range cases {
		if got := ClampRetryAfter(c.min, c.max); got != c.want {
			t.Errorf("ClampRetryAfter(%v, %v) = %v, want %v", c.min, c.max, got, c.want)
		}
	}
}

func TestPeerDialFaultFailsOver(t *testing.T) {
	plan, err := faultinject.ParsePlan("peer.dial:err:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	a, b := newStubPeer(t), newStubPeer(t)
	rt := newTestRouter(t, Config{}, a, b)
	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	st := rt.Snapshot()
	if st.Injected != 1 {
		t.Errorf("injected = %d, want 1", st.Injected)
	}
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1 (the refused dial must fail over)", st.Failovers)
	}
}

// A dropped response is the lost-reply case: the worker did the
// work, the router never hears it, and the failover re-derives the
// identical bytes — idempotent by content addressing.
func TestPeerRespondDroppedFailsOver(t *testing.T) {
	plan, err := faultinject.ParsePlan("peer.respond:err:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	a, b := newStubPeer(t), newStubPeer(t)
	want := `{"id":"k","status":"done","result":{"cycles":42}}` + "\n"
	same := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, want)
	}
	a.set(same)
	b.set(same)
	rt := newTestRouter(t, Config{}, a, b)

	w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Body.String(); got != want {
		t.Errorf("failover after a dropped reply diverged:\ngot  %q\nwant %q", got, want)
	}
	if total := a.hits.Load() + b.hits.Load(); total != 2 {
		t.Errorf("fleet saw %d dispatches, want 2 (the dropped one plus the failover)", total)
	}
}

func TestProbeQuarantineAndRejoin(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	var bReady atomic.Bool
	bReady.Store(true)
	// Wrap b's listener behavior: /readyz health is flappable.
	b.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if !bReady.Load() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ready\n")
			return
		}
		b.hits.Add(1)
		fmt.Fprintf(w, `{"id":"k","status":"done","result":{"from":%q}}`, b.url())
	})
	rt := newTestRouter(t, Config{ProbeInterval: 10 * time.Millisecond, DownAfter: 2}, a, b)

	healthyB := func() bool {
		for _, ps := range rt.Snapshot().Peers {
			if ps.URL == b.url() {
				return ps.Healthy
			}
		}
		t.Fatal("peer b missing from stats")
		return false
	}
	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for healthyB() != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer b never became %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	bReady.Store(false)
	waitFor(false, "quarantined")
	// While down, b is out of the ranking: every dispatch lands on a.
	before := a.hits.Load()
	for i := 0; i < 4; i++ {
		if w := post(t, rt.Handler(), "/v1/jobs?wait=1", jobDoc); w.Code != http.StatusOK {
			t.Fatalf("status %d with one peer down: %s", w.Code, w.Body)
		}
	}
	if a.hits.Load()-before != 4 {
		t.Errorf("survivor served %d of 4 requests", a.hits.Load()-before)
	}

	bReady.Store(true)
	waitFor(true, "healthy again")
}

func TestJobGetPollsWholeFleet(t *testing.T) {
	a, b := newStubPeer(t), newStubPeer(t)
	const key = "feedfacefeedface"
	holder := rankStubs(key, a, b)[1] // deliberately NOT the owner
	found := `{"id":"` + key + `","status":"done","cached":true,"result":{"cycles":7}}` + "\n"
	for _, p := range []*stubPeer{a, b} {
		p := p
		p.set(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if p == holder {
				io.WriteString(w, found)
				return
			}
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":"unknown job"}`+"\n")
		})
	}
	rt := newTestRouter(t, Config{}, a, b)

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+key, nil)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.String() != found {
		t.Errorf("fleet poll missed the holder: %d %s", w.Code, w.Body)
	}

	// Unanimous 404 is a 404.
	holder.set(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":"unknown job"}`+"\n")
	})
	w = httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+key, nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unanimous 404 produced %d", w.Code)
	}
}

func TestRouterRejectsDuplicateAndEmptyPeers(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a:1", "a:1"}}); err == nil {
		t.Error("duplicate peer (respelled) accepted")
	}
	if _, err := New(Config{Peers: []string{""}}); err == nil {
		t.Error("empty peer accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("peerless router accepted")
	}
}
