package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mfup/internal/dse"
	"mfup/internal/serve"
)

// Routed sweeps are where the router is more than a proxy: it runs
// the deterministic front half of the sweep itself (dse.PlanSweep —
// expand, price, prune), dispatches every surviving point to the
// worker that owns its content key, and assembles the same frontier
// the in-process driver would (dse.Planned.Finish). Because point
// keys are shared by construction with the workers' sweep journals,
// a worker that dies mid-sweep loses only its *unjournaled* points:
// the router re-dispatches them to survivors, each of which computes
// the identical rate (or serves it from its own journal), and the
// finished report is byte-identical to an unfaulted single-process
// run. That is the crash-consistency argument: there is no sweep
// state to recover because every piece of sweep state is a
// content-addressed point some worker can re-derive.

// maxSweeps bounds the router's in-memory sweep registry; completed
// entries are evicted FIFO beyond it (the durable copies of their
// points live in the workers' journals).
const maxSweeps = 256

// routedSweep is one sweep's registry entry.
type routedSweep struct {
	id     string
	done   chan struct{}
	result json.RawMessage // full report bytes when finished cleanly
	errMsg string
	transi bool
}

func (rs *routedSweep) finished() bool {
	select {
	case <-rs.done:
		return true
	default:
		return false
	}
}

// handleSweepSubmit admits one sweep at the router: parse and expand
// locally (deterministic spec defects are 400s here, never
// dispatched), dedupe against the registry by content key, then
// shard the points across the fleet.
func (rt *Router) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading sweep spec: %v", err), 0)
		return
	}
	sw, err := dse.Parse(body)
	if err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if _, _, _, err := sw.Expand(); err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	id := sw.Key()

	rt.mu.Lock()
	rs, exists := rt.sweeps[id]
	if !exists {
		rs = &routedSweep{id: id, done: make(chan struct{})}
		rt.sweeps[id] = rs
		rt.order = append(rt.order, id)
		rt.evictLocked()
	}
	rt.mu.Unlock()

	if !exists {
		rt.stats.sweeps.Add(1)
		go rt.runSweep(sw, rs)
	} else if rs.finished() && rs.errMsg == "" {
		// A repeat of a completed sweep is a cache hit, same as a
		// worker serving from its result journal.
		rt.writeJSON(w, http.StatusOK, jobResponse{ID: rs.id, Status: "done", Cached: true, Result: rs.result})
		return
	}

	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-rs.done:
			rt.writeSweepFinished(w, rs, false)
		case <-r.Context().Done():
			// Client hung up; the sweep keeps running and its report
			// waits in the registry for the retry.
		}
		return
	}
	rt.writeJSON(w, http.StatusAccepted, jobResponse{ID: rs.id, Status: "running"})
}

// handleSweepGet serves a routed sweep from the registry, falling
// back to polling the fleet — a sweep submitted directly to a worker
// (or routed before a router restart) lives in some worker's cache.
func (rt *Router) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rt.mu.Lock()
	rs, ok := rt.sweeps[key]
	rt.mu.Unlock()
	if ok {
		if !rs.finished() {
			rt.writeJSON(w, http.StatusOK, jobResponse{ID: rs.id, Status: "running"})
			return
		}
		rt.writeSweepFinished(w, rs, rs.errMsg == "")
		return
	}
	ranked := rt.ranked("sweep:" + key)
	var notFound *delivered
	for _, p := range ranked {
		if ok, _ := rt.breaker.Allow(p.url); !ok {
			continue
		}
		p.forwarded.Add(1)
		rt.stats.forwarded.Add(1)
		out := rt.attempt(r.Context(), p, false, http.MethodGet, withQuery("/v1/sweeps/"+key, r), nil)
		switch {
		case out.res != nil:
			rt.breaker.Success(p.url)
			if out.res.status != http.StatusNotFound {
				rt.relayDelivered(w, out.res)
				return
			}
			if notFound == nil {
				notFound = out.res
			}
		case out.shed:
			rt.breaker.Success(p.url)
		default:
			p.failures.Add(1)
			rt.breaker.Failure(p.url, true)
		}
	}
	if notFound != nil {
		rt.relayDelivered(w, notFound)
		return
	}
	rt.writeError(w, http.StatusNotFound, "unknown job", 0)
}

func (rt *Router) writeSweepFinished(w http.ResponseWriter, rs *routedSweep, cached bool) {
	if rs.errMsg != "" {
		rt.writeJSON(w, http.StatusOK, jobResponse{ID: rs.id, Status: "failed", Error: rs.errMsg, Transient: rs.transi})
		return
	}
	rt.writeJSON(w, http.StatusOK, jobResponse{ID: rs.id, Status: "done", Cached: cached, Result: rs.result})
}

// evictLocked trims the registry FIFO, skipping entries still
// running. Caller holds rt.mu.
func (rt *Router) evictLocked() {
	for len(rt.order) > maxSweeps {
		evicted := false
		for i, id := range rt.order {
			if rs := rt.sweeps[id]; rs != nil && rs.finished() {
				delete(rt.sweeps, id)
				rt.order = append(rt.order[:i], rt.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is in flight; nothing safe to drop
		}
	}
}

// runSweep executes one routed sweep: plan locally, resolve every
// needed point against the fleet, finish the report. Point order
// inside the report is the plan's deterministic order, so the
// assembled bytes match a local run regardless of resolution order.
func (rt *Router) runSweep(sw dse.SweepSpec, rs *routedSweep) {
	ctx, cancel := context.WithTimeout(rt.rootCtx, rt.cfg.SweepTimeout)
	defer cancel()

	finish := func(result json.RawMessage, errMsg string, transient bool) {
		rs.result, rs.errMsg, rs.transi = result, errMsg, transient
		close(rs.done)
	}

	pl, err := dse.PlanSweep(sw)
	if err != nil {
		finish(nil, err.Error(), false)
		return
	}

	sem := make(chan struct{}, rt.cfg.Concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex // report counters; each goroutine owns its own point
	allPeers := rt.peerURLs()
	for _, i := range pl.Need {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p := &pl.Report.Points[i]
			ps := dse.PointSpec{
				Spec:        p.Spec,
				Loops:       pl.Spec.Loops,
				Scale:       pl.Spec.Scale,
				Extrapolate: pl.Spec.Extrapolate,
			}
			body, err := json.Marshal(ps)
			if err != nil {
				mu.Lock()
				p.Err = fmt.Sprintf("marshaling point spec: %v", err)
				pl.Report.Failed++
				mu.Unlock()
				return
			}
			rate, servedBy, errMsg := rt.resolvePoint(ctx, p.Key, body)
			mu.Lock()
			defer mu.Unlock()
			if errMsg != "" {
				p.Err = errMsg
				pl.Report.Failed++
				return
			}
			// Simulated, not FromJournal, whoever computed it: the
			// report must read identically to a fresh local run. (A
			// worker serving the point warm from its journal is that
			// worker's business; the router asked for a simulation
			// and got the bit-identical rate either way.)
			p.Rate = rate
			p.Simulated = true
			pl.Report.Simulated++
			rt.stats.pointsDone.Add(1)
			// Reassignment is measured against the rendezvous owner
			// over ALL configured peers, health ignored: a stable
			// reference that does not shift as membership flaps.
			if servedBy != Owner(p.Key, allPeers) {
				rt.stats.reassigned.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if ctx.Err() != nil {
		finish(nil, fmt.Sprintf("sweep deadline exceeded after %d of %d points",
			pl.Report.Simulated, len(pl.Need)), true)
		return
	}
	if pl.Report.Failed > 0 {
		finish(nil, fmt.Sprintf("%d sweep points failed", pl.Report.Failed), false)
		return
	}
	rep := pl.Finish()
	raw, err := rep.JSON()
	if err != nil {
		finish(nil, fmt.Sprintf("marshaling sweep report: %v", err), false)
		return
	}
	rt.log.Info("routed sweep complete", "key", shortKey(rs.id), "points", rep.Deduped,
		"pruned", rep.Pruned, "simulated", rep.Simulated, "reassigned", rt.stats.reassigned.Load())
	finish(raw, "", false)
}

// resolvePoint attaches a rate to one sweep point: dispatch to the
// key's owner (with the standard hedging and failover), parse the
// worker's answer, and retry transient outcomes — sheds, worker
// deadlines, whole-fleet blips — until the sweep's own deadline.
// Deterministic failures return immediately; retrying those would
// re-prove the same defect on every peer.
func (rt *Router) resolvePoint(ctx context.Context, key string, body []byte) (rate float64, servedBy, errMsg string) {
	backoff := 250 * time.Millisecond
	for {
		actx, cancel := context.WithTimeout(ctx, rt.cfg.PointTimeout)
		fr := rt.forward(actx, key, http.MethodPost, "/v1/points?wait=1", body)
		cancel()
		var retryIn time.Duration
		switch {
		case fr.res != nil && fr.res.status == http.StatusOK:
			var env jobResponse
			if err := json.Unmarshal(fr.res.body, &env); err != nil {
				return 0, "", fmt.Sprintf("bad point envelope from %s: %v", fr.res.peer.url, err)
			}
			switch env.Status {
			case "done":
				k, rate, err := serve.ParsePointResult(env.Result)
				if err != nil {
					return 0, "", fmt.Sprintf("peer %s: %v", fr.res.peer.url, err)
				}
				if k != key {
					return 0, "", fmt.Sprintf("peer %s answered point %s for %s", fr.res.peer.url, shortKey(k), shortKey(key))
				}
				return rate, fr.res.peer.url, ""
			case "failed":
				if !env.Transient {
					return 0, "", env.Error
				}
				retryIn = backoff
			default: // queued/running: the wait was cut short; poll again
				retryIn = backoff
			}
		case fr.res != nil && fr.res.status == http.StatusAccepted:
			retryIn = backoff
		case fr.res != nil:
			// 400 and friends: deterministic, the point spec itself is
			// refused. No peer will ever answer differently.
			return 0, "", fmt.Sprintf("peer %s: HTTP %d: %.120s", fr.res.peer.url, fr.res.status, fr.res.body)
		default:
			// Whole-fleet shed or failure; honor the aggregate
			// Retry-After but pace the loop tighter than a client
			// would — the sweep deadline is the real bound.
			retryIn = fr.retryAfter
			if retryIn > 2*time.Second {
				retryIn = 2 * time.Second
			}
		}
		select {
		case <-ctx.Done():
			return 0, "", "sweep deadline: " + ctx.Err().Error()
		case <-time.After(retryIn):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// shortKey abbreviates a content key for log lines.
func shortKey(key string) string {
	if len(key) > 24 {
		return key[:24]
	}
	return key
}
