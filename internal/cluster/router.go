package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mfup/internal/faultinject"
	"mfup/internal/serve"
)

// Config parameterizes a Router. Only Peers is required; the zero
// value of everything else is a working production default.
type Config struct {
	Peers []string // worker base URLs, e.g. http://127.0.0.1:8081

	// Health membership: every ProbeInterval each peer's /readyz is
	// probed with ProbeTimeout; DownAfter consecutive failures take
	// the peer out of the rendezvous ranking, one success puts it
	// back. Request-path failures are the breaker's business, not the
	// prober's — the two recover a flaky peer independently.
	ProbeInterval time.Duration // <= 0 means 1s
	ProbeTimeout  time.Duration // <= 0 means 2s
	DownAfter     int           // <= 0 means 3

	// HedgeAfter is the tail-latency trigger: when the first dispatch
	// of a request has not answered within it, a second dispatch goes
	// to the next-ranked peer and the first answer wins. Safe by the
	// package's idempotency argument; the loser is cancelled.
	HedgeAfter time.Duration // <= 0 means 2s

	// MaxRetryAfter caps the Retry-After the router forwards when the
	// whole fleet sheds; the floor is always 1s (see ClampRetryAfter).
	MaxRetryAfter time.Duration // <= 0 means 60s

	// Per-peer circuit breaker (serve.Breaker keyed by peer URL):
	// threshold consecutive transport-level failures quarantine the
	// peer for the cooldown. Threshold < 0 disables; 0 means 3.
	BreakerThreshold int
	BreakerCooldown  time.Duration // <= 0 means 5s

	// SweepTimeout bounds one routed sweep end to end; PointTimeout
	// bounds each point dispatch. Concurrency is the router-wide cap
	// on in-flight point dispatches; <= 0 means min(16, 4 * peers).
	SweepTimeout time.Duration // <= 0 means 10m
	PointTimeout time.Duration // <= 0 means 2m
	Concurrency  int

	Client *http.Client // nil means a default client (no global timeout; contexts govern)
	Log    *slog.Logger // nil discards

	now func() time.Time // test seam
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 60 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 10 * time.Minute
	}
	if c.PointTimeout <= 0 {
		c.PointTimeout = 2 * time.Minute
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4 * len(c.Peers)
		if c.Concurrency > 16 {
			c.Concurrency = 16
		}
		if c.Concurrency < 1 {
			c.Concurrency = 1
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// peer is one worker's membership record.
type peer struct {
	url string

	healthy     atomic.Bool
	consecFails atomic.Int64 // consecutive probe failures

	forwarded  atomic.Int64 // dispatches launched
	failures   atomic.Int64 // transport-level dispatch failures
	probeFails atomic.Int64 // total probe failures
}

// Router shards mfud's job classes across a fleet of worker
// processes. It holds no durable state of its own — results live in
// the workers' content-addressed caches and point journals — so a
// router restart loses nothing a client retry cannot re-derive.
type Router struct {
	cfg     Config
	log     *slog.Logger
	client  *http.Client
	peers   []*peer // config order; rendezvous rank decides dispatch order
	breaker *serve.Breaker

	mu     sync.Mutex
	sweeps map[string]*routedSweep // by sweep key, bounded FIFO
	order  []string

	rootCtx    context.Context
	rootCancel context.CancelFunc
	probeWG    sync.WaitGroup

	stats rstats
}

// rstats is the router's observability surface, all atomics.
type rstats struct {
	forwarded  atomic.Int64 // requests dispatched to the fleet
	badSpec    atomic.Int64 // 400 at the router, never dispatched
	hedges     atomic.Int64 // hedge dispatches launched
	hedgeWins  atomic.Int64 // requests won by the hedge, not the primary
	failovers  atomic.Int64 // replacement dispatches after a failure or shed
	shedAll    atomic.Int64 // refusals because every eligible peer shed or failed
	sweeps     atomic.Int64 // sweeps routed
	pointsDone atomic.Int64 // sweep points resolved by the fleet
	reassigned atomic.Int64 // points served by a peer other than their owner
	injected   atomic.Int64 // peer.* faults fired
}

// New builds a Router over the configured fleet and starts its
// health prober. Peers start healthy (optimistic: requests flow
// before the first probe round completes) and URLs are normalized to
// scheme://host with no trailing slash.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: a router needs at least one peer")
	}
	seen := make(map[string]bool)
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:        cfg,
		log:        cfg.Log,
		client:     cfg.Client,
		breaker:    serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		sweeps:     make(map[string]*routedSweep),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	for _, raw := range cfg.Peers {
		u := NormalizePeer(raw)
		if u == "" {
			cancel()
			return nil, fmt.Errorf("cluster: empty peer URL in %q", strings.Join(cfg.Peers, ","))
		}
		if seen[u] {
			cancel()
			return nil, fmt.Errorf("cluster: duplicate peer %s", u)
		}
		seen[u] = true
		p := &peer{url: u}
		p.healthy.Store(true)
		rt.peers = append(rt.peers, p)
	}
	rt.probeWG.Add(1)
	go rt.probeLoop()
	rt.log.Info("routing", "peers", len(rt.peers), "hedge_after", cfg.HedgeAfter)
	return rt, nil
}

// NormalizePeer canonicalizes one peer URL: scheme defaulted to
// http, trailing slashes stripped, so "127.0.0.1:8081" and
// "http://127.0.0.1:8081/" name the same peer in the ranking.
func NormalizePeer(raw string) string {
	u := strings.TrimSpace(raw)
	u = strings.TrimRight(u, "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Close stops the prober and cancels in-flight routed work.
func (rt *Router) Close() {
	rt.rootCancel()
	rt.probeWG.Wait()
}

// probeLoop is the membership heartbeat.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.rootCtx.Done():
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.probe(p)
		}(p)
	}
	wg.Wait()
}

// probe checks one peer's /readyz. Probes bypass the peer.* fault
// sites deliberately: chaos plans perturb the request path, not the
// membership that decides where requests go.
func (rt *Router) probe(p *peer) {
	ctx, cancel := context.WithTimeout(rt.rootCtx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if ok {
		if !p.healthy.Load() && p.consecFails.Load() >= int64(rt.cfg.DownAfter) {
			rt.log.Info("peer rejoined", "peer", p.url)
		}
		p.consecFails.Store(0)
		p.healthy.Store(true)
		return
	}
	p.probeFails.Add(1)
	if n := p.consecFails.Add(1); n == int64(rt.cfg.DownAfter) {
		p.healthy.Store(false)
		rt.log.Warn("peer down", "peer", p.url, "consecutive_probe_failures", n)
	}
}

// peerURLs lists every configured peer, health ignored — the
// reference ranking reassignment is counted against.
func (rt *Router) peerURLs() []string {
	urls := make([]string, len(rt.peers))
	for i, p := range rt.peers {
		urls[i] = p.url
	}
	return urls
}

// ranked returns the key's dispatch order over currently-healthy
// peers. An empty result means the whole fleet is down.
func (rt *Router) ranked(key string) []*peer {
	byURL := make(map[string]*peer, len(rt.peers))
	var alive []string
	for _, p := range rt.peers {
		if p.healthy.Load() {
			alive = append(alive, p.url)
			byURL[p.url] = p
		}
	}
	order := Rank(key, alive)
	ranked := make([]*peer, len(order))
	for i, u := range order {
		ranked[i] = byURL[u]
	}
	return ranked
}

// ClampRetryAfter folds the fleet's shed responses into the one
// Retry-After the router forwards: the minimum the fleet asked for —
// the earliest instant any shard could admit — clamped into
// [1s, max]. Never zero or negative: "retry immediately" converts a
// shedding fleet into a retry storm, and a clock-skewed or buggy
// peer must not be able to induce one through the router.
func ClampRetryAfter(min time.Duration, max time.Duration) time.Duration {
	if max < time.Second {
		max = time.Second
	}
	if min < time.Second {
		return time.Second
	}
	if min > max {
		return max
	}
	return min
}

// delivered is a worker's definitive answer, forwarded verbatim.
type delivered struct {
	peer   *peer
	status int
	ctype  string
	body   []byte
}

// attemptOut classifies one dispatch: exactly one of res (answered),
// shed (alive but refusing), or err (transport-level failure) holds.
type attemptOut struct {
	peer  *peer
	hedge bool

	res        *delivered
	shed       bool
	shedStatus int
	retryAfter time.Duration
	err        error
}

// attempt dispatches one request to one peer through the peer.dial
// and peer.respond fault sites and classifies the outcome. 429/503
// are sheds (the peer is alive and doing its job); any other 5xx or
// a transport error is a peer failure.
func (rt *Router) attempt(ctx context.Context, p *peer, hedge bool, method, pathq string, body []byte) attemptOut {
	out := attemptOut{peer: p, hedge: hedge}
	if kind, at, _, armed := faultinject.Active().SiteFault("peer.dial"); armed {
		rt.stats.injected.Add(1)
		if kind == faultinject.KindStall {
			select {
			case <-time.After(time.Duration(at) * time.Millisecond):
			case <-ctx.Done():
				out.err = ctx.Err()
				return out
			}
		} else { // err (and panic, which has no meaning at a dial) = connect refused
			out.err = &faultinject.Error{Site: "peer.dial"}
			return out
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+pathq, rd)
	if err != nil {
		out.err = err
		return out
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		out.err = err
		return out
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	resp.Body.Close()
	if err != nil {
		out.err = fmt.Errorf("reading %s response: %w", p.url, err)
		return out
	}
	if kind, at, _, armed := faultinject.Active().SiteFault("peer.respond"); armed {
		rt.stats.injected.Add(1)
		if kind == faultinject.KindStall {
			select {
			case <-time.After(time.Duration(at) * time.Millisecond):
			case <-ctx.Done():
				out.err = ctx.Err()
				return out
			}
		} else { // the worker answered; the router never hears it
			out.err = fmt.Errorf("response from %s dropped: %w", p.url, &faultinject.Error{Site: "peer.respond"})
			return out
		}
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		out.shed, out.shedStatus = true, resp.StatusCode
		out.retryAfter = time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			out.retryAfter = time.Duration(s) * time.Second
		}
	case resp.StatusCode >= 500:
		out.err = fmt.Errorf("peer %s: HTTP %d: %.120s", p.url, resp.StatusCode, b)
	default:
		out.res = &delivered{peer: p, status: resp.StatusCode, ctype: resp.Header.Get("Content-Type"), body: b}
	}
	return out
}

// fwdResult is forward's verdict: res to relay verbatim, or a
// synthesized refusal (status/msg/retryAfter).
type fwdResult struct {
	res        *delivered
	status     int
	msg        string
	retryAfter time.Duration
}

// forward dispatches one request across the fleet in the key's
// rendezvous order: primary first, a hedge to the next-ranked peer
// if the primary is slow, failover on transport failures (breaker
// material) and sheds (not breaker material — a shedding peer is
// healthy). First definitive answer wins and cancels the rest. If
// every eligible peer sheds or fails, the refusal aggregates the
// fleet's Retry-After: 429 when the whole fleet said 429, 503
// otherwise, the interval the *minimum* shed asked for, clamped so
// it is never zero.
func (rt *Router) forward(ctx context.Context, key, method, pathq string, body []byte) fwdResult {
	ranked := rt.ranked(key)
	if len(ranked) == 0 {
		rt.stats.shedAll.Add(1)
		return fwdResult{status: http.StatusServiceUnavailable, msg: "no available peers", retryAfter: time.Second}
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	var sheds []time.Duration
	only429 := true
	var lastErr error
	launched := make(map[*peer]bool)
	resolved := make(map[*peer]bool)
	ch := make(chan attemptOut, len(ranked))
	next := 0
	// launch starts a dispatch on the next breaker-admitted peer in
	// rank order; a quarantined peer counts as a shed at its
	// remaining cooldown.
	launch := func(hedge bool) bool {
		for next < len(ranked) {
			p := ranked[next]
			next++
			if ok, retry := rt.breaker.Allow(p.url); !ok {
				sheds = append(sheds, retry)
				only429 = false
				continue
			}
			p.forwarded.Add(1)
			launched[p] = true
			go func(p *peer, hedge bool) {
				ch <- rt.attempt(actx, p, hedge, method, pathq, body)
			}(p, hedge)
			return true
		}
		return false
	}
	// releaseLosers frees half-open probe slots claimed for attempts
	// whose outcome the router will never read (hedge losers).
	releaseLosers := func() {
		for p := range launched {
			if !resolved[p] {
				rt.breaker.Release(p.url)
			}
		}
	}

	inflight := 0
	if launch(false) {
		inflight++
		rt.stats.forwarded.Add(1)
	}
	hedgeTimer := time.NewTimer(rt.cfg.HedgeAfter)
	defer hedgeTimer.Stop()
	hedged := false
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			resolved[out.peer] = true
			switch {
			case out.res != nil:
				rt.breaker.Success(out.peer.url)
				if out.hedge {
					rt.stats.hedgeWins.Add(1)
				}
				releaseLosers()
				return fwdResult{res: out.res}
			case out.shed:
				rt.breaker.Success(out.peer.url) // alive; shedding is the admission layer working
				sheds = append(sheds, out.retryAfter)
				if out.shedStatus != http.StatusTooManyRequests {
					only429 = false
				}
				if launch(false) {
					inflight++
					rt.stats.failovers.Add(1)
				}
			default:
				out.peer.failures.Add(1)
				rt.breaker.Failure(out.peer.url, true)
				rt.log.Warn("peer dispatch failed", "peer", out.peer.url, "err", out.err.Error())
				lastErr = out.err
				if launch(false) {
					inflight++
					rt.stats.failovers.Add(1)
				}
			}
		case <-hedgeTimer.C:
			if !hedged {
				hedged = true
				if launch(true) {
					inflight++
					rt.stats.hedges.Add(1)
				}
			}
		case <-actx.Done():
			releaseLosers()
			return fwdResult{status: http.StatusServiceUnavailable,
				msg: "request cancelled: " + actx.Err().Error(), retryAfter: time.Second}
		}
	}

	rt.stats.shedAll.Add(1)
	if len(sheds) > 0 {
		min := sheds[0]
		for _, d := range sheds[1:] {
			if d < min {
				min = d
			}
		}
		status := http.StatusServiceUnavailable
		msg := "all peers shedding or failed"
		if only429 && lastErr == nil {
			status = http.StatusTooManyRequests
			msg = "all peers shedding"
		}
		return fwdResult{status: status, msg: msg, retryAfter: ClampRetryAfter(min, rt.cfg.MaxRetryAfter)}
	}
	msg := "all peers failed"
	if lastErr != nil {
		msg = fmt.Sprintf("all peers failed; last: %v", lastErr)
	}
	return fwdResult{status: http.StatusBadGateway, msg: msg, retryAfter: time.Second}
}

// Handler returns the router's routes: the worker API re-exposed —
// same paths, same envelopes — so a client cannot tell a router from
// a single daemon except by reading /v1/stats.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", rt.handleJobGet)
	mux.HandleFunc("POST /v1/sweeps", rt.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{key}", rt.handleSweepGet)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", rt.handleReady)
	return mux
}

// handleJobSubmit canonicalizes locally — a defective spec is
// refused at the router without burning a dispatch — and forwards
// the *original* body: the worker re-canonicalizes to the same key,
// and its response relays byte-verbatim.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading job spec: %v", err), 0)
		return
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err), 0)
		return
	}
	c, err := serve.Canonicalize(spec)
	if err != nil {
		rt.stats.badSpec.Add(1)
		rt.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	rt.relay(w, rt.forward(r.Context(), serve.Key(c), http.MethodPost, withQuery("/v1/jobs", r), body))
}

// handleJobGet polls the fleet in the key's rank order: with
// failover and hedging a result may live on any peer, so the first
// peer that answers something other than 404 speaks for the fleet,
// and only a unanimous 404 is a 404.
func (rt *Router) handleJobGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ranked := rt.ranked(key)
	if len(ranked) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no available peers", time.Second)
		return
	}
	var notFound *delivered
	for _, p := range ranked {
		if ok, _ := rt.breaker.Allow(p.url); !ok {
			continue
		}
		p.forwarded.Add(1)
		rt.stats.forwarded.Add(1)
		out := rt.attempt(r.Context(), p, false, http.MethodGet, withQuery("/v1/jobs/"+key, r), nil)
		switch {
		case out.res != nil:
			rt.breaker.Success(p.url)
			if out.res.status != http.StatusNotFound {
				rt.relayDelivered(w, out.res)
				return
			}
			if notFound == nil {
				notFound = out.res
			}
		case out.shed:
			rt.breaker.Success(p.url)
		default:
			p.failures.Add(1)
			rt.breaker.Failure(p.url, true)
		}
	}
	if notFound != nil {
		rt.relayDelivered(w, notFound)
		return
	}
	rt.writeError(w, http.StatusServiceUnavailable, "no peer could answer", time.Second)
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	for _, p := range rt.peers {
		if p.healthy.Load() {
			io.WriteString(w, "ready\n")
			return
		}
	}
	http.Error(w, "no available peers", http.StatusServiceUnavailable)
}

// relay writes a forward's outcome: the worker's answer verbatim, or
// the synthesized refusal.
func (rt *Router) relay(w http.ResponseWriter, fr fwdResult) {
	if fr.res != nil {
		rt.relayDelivered(w, fr.res)
		return
	}
	rt.writeError(w, fr.status, fr.msg, fr.retryAfter)
}

func (rt *Router) relayDelivered(w http.ResponseWriter, d *delivered) {
	if d.ctype != "" {
		w.Header().Set("Content-Type", d.ctype)
	}
	w.WriteHeader(d.status)
	w.Write(d.body)
}

// PeerStats is one peer's row in the router's /v1/stats document.
type PeerStats struct {
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Quarantined   bool   `json:"quarantined"` // breaker-open right now
	Forwarded     int64  `json:"forwarded"`
	Failures      int64  `json:"failures"`
	ProbeFailures int64  `json:"probe_failures"`
}

// Stats is the router's /v1/stats document.
type Stats struct {
	Forwarded        int64       `json:"forwarded"`
	BadSpec          int64       `json:"bad_spec"`
	Hedges           int64       `json:"hedges_fired"`
	HedgeWins        int64       `json:"hedge_wins"`
	Failovers        int64       `json:"failovers"`
	ShedAllPeers     int64       `json:"shed_all_peers"`
	SweepsRouted     int64       `json:"sweeps_routed"`
	PointsDone       int64       `json:"points_done"`
	PointsReassigned int64       `json:"points_reassigned"`
	Injected         int64       `json:"injected_faults"`
	Peers            []PeerStats `json:"peers"`
}

// Snapshot reads the router's counters and per-peer state.
func (rt *Router) Snapshot() Stats {
	st := Stats{
		Forwarded:        rt.stats.forwarded.Load(),
		BadSpec:          rt.stats.badSpec.Load(),
		Hedges:           rt.stats.hedges.Load(),
		HedgeWins:        rt.stats.hedgeWins.Load(),
		Failovers:        rt.stats.failovers.Load(),
		ShedAllPeers:     rt.stats.shedAll.Load(),
		SweepsRouted:     rt.stats.sweeps.Load(),
		PointsDone:       rt.stats.pointsDone.Load(),
		PointsReassigned: rt.stats.reassigned.Load(),
		Injected:         rt.stats.injected.Load(),
	}
	for _, p := range rt.peers {
		st.Peers = append(st.Peers, PeerStats{
			URL:           p.url,
			Healthy:       p.healthy.Load(),
			Quarantined:   rt.breaker.QuarantinedKey(p.url),
			Forwarded:     p.forwarded.Load(),
			Failures:      p.failures.Load(),
			ProbeFailures: p.probeFails.Load(),
		})
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.Snapshot())
}

// jobResponse mirrors the worker's envelope field for field, so a
// router-composed reply (sweeps) is shaped exactly like a worker's.
type jobResponse struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"`
	Cached    bool            `json:"cached,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Transient bool            `json:"transient,omitempty"`
}

type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string, retry time.Duration) {
	resp := errorResponse{Error: msg}
	if retry > 0 {
		resp.RetryAfter = serve.RetryAfterSeconds(retry)
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfter))
	}
	rt.writeJSON(w, status, resp)
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// withQuery re-attaches the client's query string (wait=1) to the
// forwarded path.
func withQuery(path string, r *http.Request) string {
	if r.URL.RawQuery != "" {
		return path + "?" + r.URL.RawQuery
	}
	return path
}
