//go:build ignore

// Command gen regenerates the corrupted binary-trace fixtures in this
// directory. Each fixture is a damaged encoding of Livermore kernel
// 1's trace, one per corruption class the decoder must reject:
//
//	corrupt_truncated.mfutrace    the stream ends mid-record
//	corrupt_opcode.mfutrace       an undefined opcode encoding
//	corrupt_register.mfutrace     a register index past NumRegs
//
// The fixtures seed the FuzzDecodeMutated corpus and drive the CLI
// error-path e2e tests. Run from the repository root:
//
//	go run ./testdata/gen.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mfup/internal/faultinject"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen: ")
	k, err := loops.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	t := k.SharedTrace()

	encode := func(t *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, t); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}

	healthy := encode(t)
	fixtures := map[string][]byte{
		// Cut the healthy encoding mid-record: a parcel stream that
		// stops partway through an instruction.
		"corrupt_truncated.mfutrace": healthy[:len(healthy)*2/3],
		// Seeded in-memory corruptions, re-encoded. WriteBinary does
		// not validate, so the damage survives into the bytes.
		"corrupt_opcode.mfutrace":   encode(faultinject.MutateTrace(t, faultinject.MutBadOpcode, 1)),
		"corrupt_register.mfutrace": encode(faultinject.MutateTrace(t, faultinject.MutBadReg, 1)),
	}

	for name, data := range fixtures {
		path := filepath.Join("testdata", name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		if _, err := trace.ReadBinary(bytes.NewReader(data)); err == nil {
			log.Fatalf("%s: decoder accepted the corrupted fixture", name)
		} else {
			fmt.Printf("%s: %d bytes, decoder says: %v\n", name, len(data), err)
		}
	}
}
