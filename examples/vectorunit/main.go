// Vectorunit compares the three ways of running the vectorizable
// loops that the paper's framing implies:
//
//  1. as scalar code on the single-issue CRAY-like machine (what the
//     paper's Table 1 measures),
//  2. as scalar code on the best multiple-issue machine (the RUU with
//     4 units and 100 entries, Table 8's strongest column), and
//  3. as vector code on a CRAY-1-style vector unit with chaining (the
//     extension machine), the execution model §3.2 alludes to.
//
// The comparison metric is total cycles for the same computation
// (issue rate is meaningless across the scalar/vector boundary: one
// vector instruction does up to 64 operations).
//
// Run with:
//
//	go run ./examples/vectorunit
package main

import (
	"fmt"
	"log"

	"mfup"
)

func main() {
	cfg := mfup.M11BR5
	cray := mfup.NewBasic(mfup.CRAYLike, cfg)
	ruu := mfup.NewRUU(cfg.WithIssue(4, mfup.BusN).WithRUU(100))
	vec := mfup.NewVector(cfg)

	fmt.Printf("%-34s %12s %12s %12s %10s %10s\n",
		"kernel (cycles, M11BR5)", "scalar CRAY", "RUU 4/100", "vector", "vec/cray", "vec/ruu")
	for _, vk := range mfup.VectorKernels() {
		sk, err := mfup.GetKernel(vk.Number)
		if err != nil {
			log.Fatal(err)
		}
		vtr, err := vk.Trace() // validates results bit-exactly
		if err != nil {
			log.Fatal(err)
		}
		c := cray.Run(sk.SharedTrace()).Cycles
		r := ruu.Run(sk.SharedTrace()).Cycles
		v := vec.Run(vtr).Cycles
		fmt.Printf("%-34s %12d %12d %12d %9.1fx %9.1fx\n",
			sk, c, r, v, float64(c)/float64(v), float64(r)/float64(v))
	}

	fmt.Println(`
The elementwise kernels run 4-9x faster in the vector unit than on
the scalar CRAY-like machine and 1-2.5x faster than a 4-wide RUU
superscalar. The reductions are the exception: the inner product's
64-lane partial sums and the band kernel's in-order reduction
serialize, and there the RUU machine wins. This is the trade §3.2
gestures at when it discusses sharing pipelined functional units
between scalar and vector work.`)
}
