// Designspace explores the §5 design space the way a processor
// architect would use this library: sweep issue width, result-bus
// organization, and RUU size for a workload class, and find the knee —
// the cheapest configuration within a few percent of the best.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"

	"mfup"
)

type point struct {
	units int
	size  int
	kind  mfup.BusKind
	rate  float64
}

func main() {
	cfg := mfup.M11BR5 // the base CRAY-1 timing
	for _, class := range []mfup.KernelClass{mfup.Scalar, mfup.Vectorizable} {
		kernels := mfup.KernelsByClass(class)
		fmt.Printf("== %s loops, %s ==\n", class, cfg.Name())

		var pts []point
		var best point
		for _, kind := range []mfup.BusKind{mfup.BusN, mfup.Bus1} {
			for _, units := range []int{1, 2, 3, 4} {
				for _, size := range []int{10, 20, 40, 80} {
					m := mfup.NewRUU(cfg.WithIssue(units, kind).WithRUU(size))
					p := point{units: units, size: size, kind: kind, rate: harmonic(m, kernels)}
					pts = append(pts, p)
					if p.rate > best.rate {
						best = p
					}
				}
			}
		}

		fmt.Printf("best: %.3f/cycle with %d issue units, RUU %d, %s\n",
			best.rate, best.units, best.size, best.kind)

		// The knee: cheapest configuration within 5% of the best,
		// cost ordered by RUU size then issue units (buffer storage
		// dominates area in this design space, as §5.3 observes).
		knee := best
		for _, p := range pts {
			if p.rate >= 0.95*best.rate {
				if p.size < knee.size || (p.size == knee.size && p.units < knee.units) {
					knee = p
				}
			}
		}
		fmt.Printf("knee: %.3f/cycle with %d issue units, RUU %d, %s (>= 95%% of best)\n\n",
			knee.rate, knee.units, knee.size, knee.kind)
	}
}

func harmonic(m mfup.Machine, kernels []*mfup.Kernel) float64 {
	var invSum float64
	for _, k := range kernels {
		invSum += 1 / m.Run(k.SharedTrace()).IssueRate()
	}
	return float64(len(kernels)) / invSum
}
