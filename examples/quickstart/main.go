// Quickstart: run one Livermore loop across the paper's four basic
// machine organizations and all four memory/branch variations, then
// show what dependency resolution (the RUU machine) buys on top.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mfup"
)

func main() {
	k := mfup.MustKernel(1) // LFK 1, the hydro fragment
	tr := k.SharedTrace()
	fmt.Printf("%s: %d dynamic instructions\n\n", k, tr.Len())

	// The §3 progression: each row adds execution overlap.
	fmt.Printf("%-14s", "")
	for _, cfg := range mfup.BaseConfigs() {
		fmt.Printf("%9s", cfg.Name())
	}
	fmt.Println()
	for _, org := range mfup.Organizations() {
		fmt.Printf("%-14s", org)
		for _, cfg := range mfup.BaseConfigs() {
			r := mfup.NewBasic(org, cfg).Run(tr)
			fmt.Printf("%9.3f", r.IssueRate())
		}
		fmt.Println()
	}

	// What the loop could do in principle (§4), and what an RUU
	// machine actually achieves (§5.3).
	fmt.Println()
	for _, cfg := range mfup.BaseConfigs() {
		lim := mfup.ComputeLimits(tr, cfg, mfup.Pure)
		ruu := mfup.NewRUU(cfg.WithIssue(4, mfup.BusN).WithRUU(50)).Run(tr)
		fmt.Printf("%s: dataflow limit %.3f, RUU(4 units, 50 entries) achieves %.3f (%.0f%%)\n",
			cfg.Name(), lim.Actual, ruu.IssueRate(), 100*ruu.IssueRate()/lim.Actual)
	}
}
