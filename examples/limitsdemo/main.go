// Limitsdemo reproduces the §4 reasoning on two extreme loops:
//
//   - LFK 5 (tri-diagonal elimination), a true recurrence: its
//     pseudo-dataflow limit is set by the floating-point chain
//     through x[i-1], so it barely moves with memory or branch speed.
//   - LFK 12 (first difference), fully independent iterations: its
//     pseudo-dataflow limit is set by branch resolution alone, so it
//     responds strongly to the branch time and not at all to memory.
//
// It also contrasts Pure and Serial WAW treatment: without buffering
// for multiple register instances, the limit collapses toward one
// instruction per cycle — the paper's argument for why dependency
// resolution hardware must rename.
//
// Run with:
//
//	go run ./examples/limitsdemo
package main

import (
	"fmt"

	"mfup"
)

func main() {
	rec := mfup.MustKernel(5)  // recurrence
	ind := mfup.MustKernel(12) // independent iterations

	fmt.Println("Pure dataflow limits (instructions/cycle):")
	fmt.Printf("%-34s", "")
	for _, cfg := range mfup.BaseConfigs() {
		fmt.Printf("%9s", cfg.Name())
	}
	fmt.Println()
	for _, k := range []*mfup.Kernel{rec, ind} {
		fmt.Printf("%-34s", k)
		for _, cfg := range mfup.BaseConfigs() {
			l := mfup.ComputeLimits(k.SharedTrace(), cfg, mfup.Pure)
			fmt.Printf("%9.3f", l.Actual)
		}
		fmt.Println()
	}

	fmt.Println("\nSerial (in-order WAW) limits:")
	for _, k := range []*mfup.Kernel{rec, ind} {
		fmt.Printf("%-34s", k)
		for _, cfg := range mfup.BaseConfigs() {
			l := mfup.ComputeLimits(k.SharedTrace(), cfg, mfup.Serial)
			fmt.Printf("%9.3f", l.Actual)
		}
		fmt.Println()
	}

	fmt.Println("\nHow close do real machines come? (M11BR5)")
	cfg := mfup.M11BR5
	for _, k := range []*mfup.Kernel{rec, ind} {
		tr := k.SharedTrace()
		lim := mfup.ComputeLimits(tr, cfg, mfup.Pure).Actual
		cray := mfup.NewBasic(mfup.CRAYLike, cfg).Run(tr).IssueRate()
		ruu := mfup.NewRUU(cfg.WithIssue(4, mfup.BusN).WithRUU(100)).Run(tr).IssueRate()
		fmt.Printf("%-34s limit %.3f   CRAY-like %.3f (%2.0f%%)   RUU4/100 %.3f (%2.0f%%)\n",
			k, lim, cray, 100*cray/lim, ruu, 100*ruu/lim)
	}
}
