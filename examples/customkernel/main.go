// Customkernel shows the full user workflow on code that is not part
// of the built-in suite: write a kernel in the CRAY-like assembly
// language, lay out its data, trace it, compare machines on it, and
// measure how far the code sits from its own dataflow limit.
//
// The kernel is a dot product in two codings: the straightforward
// loop and a 4-way unrolled version with four partial sums. The
// unrolled coding shortens the recurrence (one floating add per four
// elements per chain), which single-issue machines cannot exploit but
// the RUU machine can — the same interplay between coding and issue
// logic that §4 of the paper points out when it notes the
// pseudo-dataflow limit is a property of the encoding.
//
// Run with:
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"mfup"
)

const n = 256 // elements; divisible by 4 for the unrolled version

const xBase, yBase, qAddr = 0x1000, 0x2000, 0x100

var simple = fmt.Sprintf(`
; dot product, straightforward coding
    A1 = %d          ; &x
    A2 = %d          ; &y
    A7 = 1
    A0 = %d
    S1 = 0
loop:
    A0 = A0 - A7
    S2 = [A1]
    S3 = [A2]
    S4 = S2 *F S3
    S1 = S1 +F S4
    A1 = A1 + A7
    A2 = A2 + A7
    JAN loop
    A3 = %d
    [A3] = S1
`, xBase, yBase, n, qAddr)

var unrolled = fmt.Sprintf(`
; dot product, 4-way unrolled with four partial sums
    A1 = %d          ; &x
    A2 = %d          ; &y
    A7 = 1
    A0 = %d          ; n/4 trips
    S1 = 0
    S2 = 0
    S3 = 0
    S4 = 0
loop:
    A0 = A0 - A7
    S5 = [A1]
    S6 = [A2]
    S5 = S5 *F S6
    S1 = S1 +F S5
    S5 = [A1 + 1]
    S6 = [A2 + 1]
    S5 = S5 *F S6
    S2 = S2 +F S5
    S5 = [A1 + 2]
    S6 = [A2 + 2]
    S5 = S5 *F S6
    S3 = S3 +F S5
    S5 = [A1 + 3]
    S6 = [A2 + 3]
    S5 = S5 *F S6
    S4 = S4 +F S5
    A1 = A1 + 4
    A2 = A2 + 4
    JAN loop
    S1 = S1 +F S2
    S3 = S3 +F S4
    S1 = S1 +F S3
    A3 = %d
    [A3] = S1
`, xBase, yBase, n/4, qAddr)

func main() {
	for _, v := range []struct{ name, src string }{
		{"simple", simple},
		{"unrolled x4", unrolled},
	} {
		prog, err := mfup.Assemble(v.name, v.src)
		if err != nil {
			log.Fatal(err)
		}
		m := mfup.NewEmuMachine(0)
		for i := 0; i < n; i++ {
			m.SetFloat(xBase+int64(i), 1+float64(i)/n)
			m.SetFloat(yBase+int64(i), 2-float64(i)/n)
		}
		tr, err := mfup.TraceProgram(m, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d dynamic instructions, result %.6f ==\n",
			v.name, tr.Len(), m.Float(qAddr))

		cfg := mfup.M11BR5
		cray := mfup.NewBasic(mfup.CRAYLike, cfg).Run(tr)
		ruu := mfup.NewRUU(cfg.WithIssue(4, mfup.BusN).WithRUU(50)).Run(tr)
		lim := mfup.ComputeLimits(tr, cfg, mfup.Pure)
		fmt.Printf("CRAY-like single issue:  %.3f/cycle\n", cray.IssueRate())
		fmt.Printf("RUU 4 units, 50 entries: %.3f/cycle\n", ruu.IssueRate())
		fmt.Printf("dataflow limit:          %.3f/cycle (critical path %d cycles)\n\n",
			lim.Actual, lim.CriticalPath)
	}
}
