// Scheduling demonstrates the §6 observation that software code
// scheduling is one route to reducing issue-stage blockage: it runs
// every Livermore kernel through the static list scheduler
// (mfup.ScheduleProgram) and compares issue rates on the single-issue
// CRAY-like machine before and after — and then shows that an RUU
// machine, which resolves the same dependences in hardware, leaves
// much less for the scheduler to claim.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"mfup"
)

func main() {
	cfg := mfup.M11BR5
	cray := mfup.NewBasic(mfup.CRAYLike, cfg)
	ruu := mfup.NewRUU(cfg.WithIssue(2, mfup.BusN).WithRUU(40))

	fmt.Printf("%-38s %10s %10s %7s %12s %12s\n",
		"kernel", "cray", "cray+sched", "gain", "ruu", "ruu+sched")
	for _, k := range mfup.Kernels() {
		base := cray.Run(k.SharedTrace()).IssueRate()

		scheduled := mfup.ScheduleProgram(k.Program(), cfg)
		m := k.NewMachine()
		tr, err := mfup.TraceProgram(m, scheduled)
		if err != nil {
			log.Fatalf("%s: %v", k, err)
		}
		// The scheduler must not have changed the computation.
		if err := k.Validate(m); err != nil {
			log.Fatalf("%s: scheduled program wrong: %v", k, err)
		}
		after := cray.Run(tr).IssueRate()

		ruuBase := ruu.Run(k.SharedTrace()).IssueRate()
		ruuAfter := ruu.Run(tr).IssueRate()

		fmt.Printf("%-38s %10.3f %10.3f %+6.1f%% %12.3f %12.3f\n",
			k, base, after, 100*(after-base)/base, ruuBase, ruuAfter)
	}
	fmt.Println("\nHardware dependency resolution (RUU) and software scheduling chase")
	fmt.Println("the same blockages; the RUU columns move far less because the")
	fmt.Println("hardware already tolerates the latencies the scheduler hides.")
}
