package mfup_test

import (
	"fmt"
	"strings"
	"testing"

	"mfup"
	"mfup/internal/bus"
	"mfup/internal/probe"
	"mfup/internal/tables"
)

// matrixMachines covers every machine model: the four §3 basic
// organizations, the two §3.3 dependency-resolution references, the
// §5 multiple-issue family, and the vector extension. The multiple-
// issue machines run with two issue units and the RUU with 20 entries
// — big enough to exercise buffer wraparound in the steady state.
type matrixMachine struct {
	name string
	mk   func(cfg mfup.Config) mfup.Machine
}

func matrixMachines() []matrixMachine {
	wide := func(cfg mfup.Config) mfup.Config { return cfg.WithIssue(2, bus.BusN) }
	return []matrixMachine{
		{"Simple", func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.Simple, cfg) }},
		{"SerialMemory", func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.SerialMemory, cfg) }},
		{"NonSegmented", func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.NonSegmented, cfg) }},
		{"CRAYLike", func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.CRAYLike, cfg) }},
		{"Scoreboard", func(cfg mfup.Config) mfup.Machine { return mfup.NewScoreboard(cfg) }},
		{"Tomasulo", func(cfg mfup.Config) mfup.Machine { return mfup.NewTomasulo(cfg) }},
		{"MultiIssue", func(cfg mfup.Config) mfup.Machine { return mfup.NewMultiIssue(wide(cfg)) }},
		{"MultiIssueOOO", func(cfg mfup.Config) mfup.Machine { return mfup.NewMultiIssueOOO(wide(cfg)) }},
		{"RUU", func(cfg mfup.Config) mfup.Machine { return mfup.NewRUU(wide(cfg).WithRUU(20)) }},
		{"Vector", func(cfg mfup.Config) mfup.Machine { return mfup.NewVector(cfg) }},
	}
}

// countersEqual compares every observable total of two probes, with
// occupancy histograms read level-wise so recorded-length differences
// (trailing zeros) do not count as divergence.
func countersEqual(a, b *probe.Counters) string {
	if a.Issued != b.Issued || a.Cycles != b.Cycles || a.Slots != b.Slots ||
		a.Branches != b.Branches || a.Width != b.Width {
		return fmt.Sprintf("totals: %s vs %s", a, b)
	}
	if a.Stalls != b.Stalls {
		return fmt.Sprintf("stall breakdown: %v vs %v", a.Stalls, b.Stalls)
	}
	if a.FU != b.FU {
		return fmt.Sprintf("unit work: %v vs %v", a.FU, b.FU)
	}
	hist := func(c *probe.Counters, level int) int64 {
		if level < len(c.OccupancyHist) {
			return c.OccupancyHist[level]
		}
		return 0
	}
	n := len(a.OccupancyHist)
	if len(b.OccupancyHist) > n {
		n = len(b.OccupancyHist)
	}
	for i := 0; i < n; i++ {
		if hist(a, i) != hist(b, i) {
			return fmt.Sprintf("occupancy level %d: %d vs %d", i, hist(a, i), hist(b, i))
		}
	}
	return ""
}

// TestExtrapolationMatrix is the differential matrix: every machine
// model against every Livermore loop (the vector machine against its
// nine vector codings — it rejects scalar traces), extrapolated
// against full simulation. Cycle counts, instruction counts, issue
// rates, and the complete per-reason stall ledger must be identical
// bit for bit whether the engine engaged or fell back; engagement
// itself is pinned where the steady-state premise guarantees it.
// Runs in parallel per machine so -race exercises the shared
// period/slice caches from concurrent engines.
func TestExtrapolationMatrix(t *testing.T) {
	var scalarTraces, vectorTraces []*mfup.Trace
	for _, k := range mfup.Kernels() {
		scalarTraces = append(scalarTraces, k.SharedTrace())
	}
	for _, k := range mfup.VectorKernels() {
		vectorTraces = append(vectorTraces, k.SharedTrace())
	}

	for _, cfg := range []mfup.Config{mfup.M11BR5, mfup.M5BR2} {
		for _, mm := range matrixMachines() {
			cfg, mm := cfg, mm
			t.Run(cfg.Name()+"/"+mm.name, func(t *testing.T) {
				t.Parallel()
				traces := scalarTraces
				if mm.name == "Vector" {
					traces = vectorTraces
				}
				engagedAny := false
				for _, tr := range traces {
					bare := mm.mk(cfg)
					var wantC probe.Counters
					bare.SetProbe(&wantC)
					want, err := bare.RunChecked(tr, mfup.DefaultSimLimits())
					if err != nil {
						t.Fatalf("%s full: %v", tr.Name, err)
					}
					bare.SetProbe(nil)

					e := mfup.Extrapolate(mm.mk(cfg))
					var gotC probe.Counters
					e.SetProbe(&gotC)
					got, err := e.RunChecked(tr, mfup.DefaultSimLimits())
					if err != nil {
						t.Fatalf("%s extrapolated: %v", tr.Name, err)
					}
					if got != want {
						t.Errorf("%s: result diverged:\n extrapolated %+v\n full         %+v",
							tr.Name, got, want)
					}
					if diff := countersEqual(&gotC, &wantC); diff != "" {
						t.Errorf("%s: counters diverged: %s", tr.Name, diff)
					}
					s := e.Stats()
					engagedAny = engagedAny || s.Engaged
					if tr.Name == "lfk13" && s.Engaged {
						t.Errorf("lfk13 (data-dependent flow) engaged the engine")
					}
					if !s.Engaged && s.Reason == "" {
						t.Errorf("%s: fallback with no reason", tr.Name)
					}
				}
				// Every scalar machine must engage somewhere on the
				// strided kernels; the vector codings are too short
				// and fall back everywhere, which is itself pinned.
				if mm.name == "Vector" {
					if engagedAny {
						t.Error("vector machine engaged on a short vector coding")
					}
				} else if !engagedAny {
					t.Error("engine never engaged on any scalar kernel")
				}
			})
		}
	}
}

// TestExtrapolationTablesIdentical is the acceptance criterion on the
// paper artifacts: regenerating tables with the engine enabled must
// render byte-identical output — cycles, issue rates, and metrics —
// at the paper's loop lengths. Table 1 covers the four basic
// organizations; Table 7 the RUU family, whose long steady-state
// periods stress the adaptive ladder. (The full sweep is covered by
// the e2e scaled-tables run.)
func TestExtrapolationTablesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration skipped in -short mode")
	}
	defer tables.SetExtrapolate(false)
	for _, tc := range []struct {
		name string
		gen  func() *tables.Table
	}{
		{"Table1", tables.Table1},
		{"Table7", tables.Table7},
	} {
		tables.SetExtrapolate(false)
		want := tc.gen().Render()
		tables.SetExtrapolate(true)
		got := tc.gen().Render()
		if got != want {
			t.Errorf("%s diverged under extrapolation:\n--- extrapolated ---\n%s\n--- full ---\n%s",
				tc.name, got, want)
		}
	}
}

// TestExtrapolationFacade smoke-tests the public wrappers: kernel
// scaling past the materializable maximum through KernelForScale /
// VirtualWindows / WithVirtual, with the headline n=1e9 shape.
func TestExtrapolationFacade(t *testing.T) {
	if err := mfup.CanExtrapolate(mfup.MustKernel(1).SharedTrace()); err != nil {
		t.Fatalf("CanExtrapolate(LFK 1): %v", err)
	}
	if err := mfup.CanExtrapolate(mfup.MustKernel(13).SharedTrace()); err == nil {
		t.Fatal("CanExtrapolate(LFK 13) = nil, want error")
	}
	const n = 1_000_000_000
	k, extra, err := mfup.KernelForScale(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if int64(k.N)+extra != n {
		t.Fatalf("KernelForScale: %d materialized + %d virtual != %d", k.N, extra, n)
	}
	vw, err := mfup.VirtualWindows(k, extra)
	if err != nil {
		t.Fatal(err)
	}
	e := mfup.Extrapolate(mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5)).
		WithVirtual(map[string]int64{k.SharedTrace().Name: vw})
	r, err := e.RunChecked(k.SharedTrace(), mfup.DefaultSimLimits())
	if err != nil {
		t.Fatal(err)
	}
	// LFK 1 issues 14 instructions per iteration: the billion-point
	// loop's totals follow exactly.
	if r.Instructions < 14*int64(n) || r.Cycles <= r.Instructions {
		t.Errorf("n=1e9 run implausible: %+v", r)
	}
	if s := e.Stats(); !s.Engaged || s.Windows < int64(n) {
		t.Errorf("n=1e9 stats %+v, want engagement covering all windows", s)
	}
	if !strings.Contains(fmt.Sprint(r.Instructions), "000000") {
		t.Errorf("instruction count %d does not look extrapolated", r.Instructions)
	}
}
