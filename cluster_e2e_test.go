package mfup_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mfup/internal/cluster"
	"mfup/internal/dse"
)

// The cluster drill sweep: 8 machines, small enough for CI, spread
// across the fleet by content key.
const clusterSweep = `{"base":{"kind":"ooo","mem":11,"br":5},"axes":{"width":[1,2,4,8],"bus":["nbus","1bus"]}}`

// TestClusterEndToEnd drives the router and its workers as real
// processes: flag validation, a dead-worker sweep with byte-identical
// output and provable reassignment, and a mixed job/sweep soak with
// the load generator round-robining across the fleet.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster end-to-end test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	mfud := build("mfud")
	mfuload := build("mfuload")

	t.Run("RouteFlagValidation", func(t *testing.T) {
		for _, args := range [][]string{
			{"-addr", "127.0.0.1:0", "-route"},
			{"-addr", "127.0.0.1:0", "-peers", "127.0.0.1:1"},
			{"-addr", "127.0.0.1:0", "-route", "-peers", ""},
		} {
			out, err := exec.Command(mfud, args...).CombinedOutput()
			if err == nil {
				t.Errorf("mfud %v: expected a usage error, got success\n%s", args, out)
			}
		}
	})

	t.Run("DeadWorkerSweepByteIdenticalAndReassigned", func(t *testing.T) {
		want := localClusterReport(t)

		var workers []*daemon
		var urls []string
		for i := 0; i < 3; i++ {
			dir := t.TempDir()
			w := startDaemon(t, mfud,
				"-cache", filepath.Join(dir, "cache.jsonl"),
				"-sweep-journal", filepath.Join(dir, "points.jsonl"),
				"-workers", "2")
			workers = append(workers, w)
			urls = append(urls, w.url)
		}

		// Deterministic victim: a worker that owns at least one of the
		// sweep's point keys, so its death forces reassignment.
		victim, owned := pickVictim(t, urls)
		workers[victim].kill(t)

		router := startDaemon(t, mfud, "-route", "-peers", strings.Join(urls, ","))
		got := submitSweepWait(t, router.url, clusterSweep)
		if !bytes.Equal(got, want) {
			t.Errorf("routed report with a dead worker diverged from the local run:\nrouted: %.200s\nlocal:  %.200s", got, want)
		}

		var st struct {
			PointsDone       int64 `json:"points_done"`
			PointsReassigned int64 `json:"points_reassigned"`
		}
		getJSON(t, router.url+"/v1/stats", &st)
		if st.PointsDone != 8 {
			t.Errorf("points_done = %d, want 8", st.PointsDone)
		}
		if st.PointsReassigned < int64(owned) {
			t.Errorf("points_reassigned = %d, want >= %d (the dead worker's share)", st.PointsReassigned, owned)
		}

		// Survivors did real work, through their own admission paths.
		var did int64
		for i, w := range workers {
			if i == victim {
				continue
			}
			var ws struct {
				Points int64 `json:"points_submitted"`
			}
			getJSON(t, w.url+"/v1/stats", &ws)
			did += ws.Points
		}
		if did < 8 {
			t.Errorf("survivors saw %d point submissions, want >= 8", did)
		}
		router.terminate(t)
	})

	t.Run("LoadMixAcrossFleetVerdictClean", func(t *testing.T) {
		w1 := startDaemon(t, mfud, "-workers", "2")
		w2 := startDaemon(t, mfud, "-workers", "2")
		router := startDaemon(t, mfud, "-route", "-peers", w1.url+","+w2.url)

		// Round-robin between the router and a worker it fronts: the
		// byte-identity verdict now spans processes — a disagreement
		// between the two paths for the same key is corruption.
		report := filepath.Join(t.TempDir(), "report.json")
		out, err := exec.Command(mfuload,
			"-addr", router.url+","+w1.url,
			"-duration", "3s", "-rate", "30", "-clients", "4",
			"-sweeps", "5", "-report", report).CombinedOutput()
		if err != nil {
			t.Fatalf("mfuload: %v\n%s", err, out)
		}
		var rep struct {
			Requests int      `json:"requests"`
			Done     int      `json:"done"`
			Cached   int      `json:"cached"`
			Sweeps   int      `json:"sweeps"`
			Errors   int      `json:"errors"`
			Corrupt  []string `json:"corrupt_keys"`
		}
		b := readFileT(t, report)
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("report %s: %v", b, err)
		}
		if rep.Done+rep.Cached == 0 || rep.Sweeps == 0 {
			t.Errorf("soak did no useful work: %+v", rep)
		}
		if len(rep.Corrupt) != 0 {
			t.Errorf("cross-process corruption: %v", rep.Corrupt)
		}
		if rep.Errors != 0 {
			t.Errorf("healthy fleet produced %d errors: %+v\nrouter log:\n%s", rep.Errors, rep, router.out.String())
		}
		router.terminate(t)
		w1.terminate(t)
		w2.terminate(t)
	})
}

// localClusterReport computes the drill sweep in process — the bytes
// every routed run must reproduce. The envelope embeds the report as
// a json.RawMessage, which compacts it, so the reference compares
// compacted too.
func localClusterReport(t *testing.T) []byte {
	t.Helper()
	sw, err := dse.Parse([]byte(clusterSweep))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dse.Run(context.Background(), sw, dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pickVictim returns the first worker owning at least one of the
// sweep's point keys, and how many it owns.
func pickVictim(t *testing.T, urls []string) (int, int) {
	t.Helper()
	sw, err := dse.Parse([]byte(clusterSweep))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := dse.PlanSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for _, i := range pl.Need {
		owned[cluster.Owner(pl.Report.Points[i].Key, urls)]++
	}
	for i, u := range urls {
		if owned[u] > 0 {
			return i, owned[u]
		}
	}
	t.Fatal("no worker owns any point — degenerate ranking")
	return -1, 0
}

// submitSweepWait posts a sweep with ?wait=1 and returns the report
// bytes, failing the test on anything but a completed sweep.
func submitSweepWait(t *testing.T, base, doc string) []byte {
	t.Helper()
	hc := &http.Client{Timeout: 5 * time.Minute}
	resp, err := hc.Post(base+"/v1/sweeps?wait=1", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobReply
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || jr.Status != "done" {
		t.Fatalf("sweep submit: %d %+v", resp.StatusCode, jr)
	}
	return jr.Result
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
